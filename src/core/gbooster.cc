#include "core/gbooster.h"

#include <algorithm>

#include "common/error.h"
#include "gles/state_snapshot.h"
#include "wire/decoder.h"

namespace gb::core {
namespace {

// The subset of a frame's records the shadow replica needs between frames.
wire::FrameCommands state_subset(const wire::FrameCommands& frame) {
  wire::FrameCommands state;
  state.sequence = frame.sequence;
  for (const wire::CommandRecord& record : frame.records) {
    if (wire::mutates_shared_state(record.op())) {
      state.records.push_back(record);
    }
  }
  return state;
}

wire::FrameCommands draw_subset(const wire::FrameCommands& frame) {
  wire::FrameCommands draws;
  draws.sequence = frame.sequence;
  for (const wire::CommandRecord& record : frame.records) {
    if (!wire::mutates_shared_state(record.op())) {
      draws.records.push_back(record);
    }
  }
  return draws;
}

}  // namespace

GBoosterRuntime::GBoosterRuntime(EventLoop& loop, GBoosterConfig config,
                                 net::ReliableEndpoint& endpoint,
                                 std::vector<ServiceDeviceInfo> devices)
    : loop_(loop),
      config_(config),
      endpoint_(endpoint),
      dispatcher_(devices, config.dispatch_policy),
      tracer_(config.tracer) {
  for (const ServiceDeviceInfo& d : devices) {
    device_nodes_.push_back(d.node);
    migration_dark_.push_back(0);
    render_caches_.push_back(std::make_unique<compress::CommandCache>());
    cache_epochs_.push_back(0);
    mirror_revs_.push_back(0);
    apply_floors_.push_back(0);
    needs_snapshot_.push_back(false);
    snapshot_covers_ids_.push_back(0);
    manifests_.push_back(nullptr);
  }
  if (config_.shared_dedup) {
    join_pending_ = true;
    loop_.schedule_after(config_.join_delay, [this] { join_tick(); });
    // The deadline is absolute (not re-armed per retry): a session must
    // never stall on an unrouted endpoint or a silent service.
    loop_.schedule_after(config_.join_delay + config_.manifest_wait,
                         [this] { finish_join(); });
  }
  recorder_ = std::make_unique<wire::CommandRecorder>(
      config_.nominal_width, config_.nominal_height,
      [this](wire::FrameCommands frame) { return on_frame(std::move(frame)); });
  endpoint_.set_abandon_handler(
      [this](net::NodeId stream, std::uint64_t message_id) {
        on_transport_abandon(stream, message_id);
      });
  if (config_.health.enabled) {
    loop_.schedule_after(config_.health.probe_interval,
                         [this] { heartbeat_tick(); });
  }
  if (config_.qos.enabled) {
    governor_ = std::make_unique<QosGovernor>(config_.qos);
    loop_.schedule_after(config_.qos.window, [this] { qos_tick(); });
  }
}

std::size_t GBoosterRuntime::active_in_flight() const {
  std::size_t active = 0;
  for (const auto& [sequence, flight] : in_flight_) {
    if (!flight.shed) active++;
  }
  return active;
}

bool GBoosterRuntime::can_issue_frame() {
  // Under overload the governor shrinks the pending window (DESIGN.md §11):
  // frames admitted past what the transport can carry only queue behind the
  // repair traffic and fatten the display tail.
  const int window = governor_ != nullptr
                         ? governor_->depth_cap(config_.max_pending_requests)
                         : config_.max_pending_requests;
  // Frames held for the join handshake occupy window slots: the application
  // keeps generating up to the window during the manifest wait, then the
  // whole cohort flows at once.
  if (static_cast<int>(active_in_flight() + join_hold_.size()) < window) {
    return true;
  }
  if (governor_ != nullptr) {
    // All-dead, no fallback: frames are shed at the head (on_frame), so the
    // application is never throttled against a void.
    if (!config_.enable_local_fallback && dispatcher_.healthy_count() == 0) {
      return true;
    }
    // Keep-latest: a full window admits the new frame when an older
    // undispatched one can be shed in its place.
    for (const auto& [sequence, flight] : in_flight_) {
      if (!flight.dispatched && !flight.local && !flight.shed) return true;
    }
  }
  stats_.issue_stalls++;
  return false;
}

void GBoosterRuntime::qos_tick() {
  const double backlog_ms =
      endpoint_.route() != nullptr ? endpoint_.route()->backlog().ms() : 0.0;
  const std::size_t depth = active_in_flight();
  if (governor_->evaluate(loop_.now(), backlog_ms, depth)) {
    if (runtime::kTracingCompiledIn && tracer_ != nullptr) {
      tracer_->instant(
          "qos_level", endpoint_.id(), loop_.now(),
          {{"level", static_cast<double>(governor_->level())},
           {"quality", static_cast<double>(governor_->quality())},
           {"window_p95_ms", governor_->last_window_p95_ms()},
           {"backlog_ms", backlog_ms},
           {"pending_depth", static_cast<double>(depth)}});
    }
  }
  loop_.schedule_after(config_.qos.window, [this] { qos_tick(); });
}

void GBoosterRuntime::install(hooking::DynamicLinker& linker,
                              const std::string& soname) {
  // Bind the genuine driver while the preload list still resolves to it:
  // this handle is the §IV-A escape hatch the local-render fallback draws
  // through once the wrapper shadows every other lookup path.
  if (config_.enable_local_fallback && local_gles_ == nullptr) {
    try {
      local_gles_ = linker.link_gles("libGLESv2.so");
    } catch (const Error&) {
      // No genuine driver registered (pure analytic harness): fallback
      // frames keep their timing model but produce no replica pixels.
    }
  }
  linker.register_library(
      hooking::LibraryImage::exporting_all(soname, recorder_.get()));
  std::vector<std::string> preload = linker.preload();
  preload.insert(preload.begin(), soname);
  linker.set_preload(std::move(preload));
}

std::size_t GBoosterRuntime::memory_overhead_bytes() const {
  std::size_t total = recorder_->overhead_bytes();
  total += state_cache_.resident_bytes();
  for (const auto& cache : render_caches_) total += cache->resident_bytes();
  return total;
}

std::optional<std::size_t> GBoosterRuntime::index_of(net::NodeId node) const {
  for (std::size_t j = 0; j < device_nodes_.size(); ++j) {
    if (device_nodes_[j] == node) return j;
  }
  return std::nullopt;
}

void GBoosterRuntime::erase_msg_entries(const InFlight& flight) {
  if (flight.has_render_msg) {
    msg_to_seq_.erase(
        {device_nodes_[flight.device_index], flight.render_msg_id});
  }
  if (flight.has_state_msg) {
    msg_to_seq_.erase({config_.state_group, flight.state_msg_id});
  }
}

void GBoosterRuntime::trace_dispatch(std::uint64_t sequence, double workload,
                                     std::size_t device_index) {
  if (!runtime::kTracingCompiledIn || tracer_ == nullptr) return;
  // The Eq. 4 scores behind this pick, one per device (-1 = dead).
  std::vector<std::pair<std::string, double>> args;
  args.emplace_back("sequence", static_cast<double>(sequence));
  args.emplace_back("chosen", static_cast<double>(device_index));
  for (std::size_t j = 0; j < device_nodes_.size(); ++j) {
    const double cost =
        dispatcher_.healthy(j)
            ? (dispatcher_.queued_workload(j) + workload) /
                      dispatcher_.device(j).capability_pps +
                  dispatcher_.estimated_delay(j).seconds()
            : -1.0;
    args.emplace_back("eq4_cost_" + std::to_string(j), cost);
  }
  tracer_->instant("dispatch", endpoint_.id(), loop_.now(), std::move(args));
}

bool GBoosterRuntime::on_frame(wire::FrameCommands frame) {
  check(!device_nodes_.empty(), "no service devices configured");
  if (join_pending_) {
    // Holding the cold-start frames until the manifests arrive is what lets
    // the very first upload ship as shared references; finish_join() replays
    // them through this path in issue order.
    if (join_hold_.empty()) join_hold_started_ = loop_.now();
    stats_.frames_held_for_manifest++;
    join_hold_.push_back(std::move(frame));
    return true;
  }
  if (governor_ != nullptr) return on_frame_governed(std::move(frame));
  const std::uint64_t sequence = frame.sequence;

  // Eq. 4 inputs.
  const double workload = workload_override_
                              ? workload_override_()
                              : recorder_->last_frame_profile().workload_pixels;
  const bool no_healthy = dispatcher_.healthy_count() == 0;
  const bool local = no_healthy && config_.enable_local_fallback;

  std::size_t device_index = 0;
  if (!local) {
    // With fallback disabled and every device dead, keep sending into the
    // void (device 0): the display gap timeout then reclaims the frames —
    // the diagnostic behaviour of a system without graceful degradation.
    // (The QoS governor path sheds at the head instead.)
    device_index = no_healthy ? 0 : dispatcher_.pick(workload);
    trace_dispatch(sequence, workload, device_index);
    dispatcher_.on_assigned(device_index, workload);
  }

  const compress::CacheStats state_cache_before = stats_.state_cache;
  const compress::CacheStats render_cache_before = stats_.render_cache;

  // Multi-device consistency (§VI-B): the frame's state-mutating records go
  // to everyone — also while every device is down, since the reliable layer
  // keeps retransmitting and heals recovering replicas. Single-device
  // sessions skip the redundant copy.
  Bytes state_message;
  if (device_nodes_.size() > 1) {
    StateHeader header;
    header.sequence = sequence;
    header.renderer_node = local ? 0 : device_nodes_[device_index];
    header.cache_epoch = state_epoch_;
    header.apply_floor = state_apply_floor_;
    state_message =
        make_state_message(header, state_subset(frame), state_cache_,
                           stats_.state_cache, state_manifest());
  }

  Bytes render_message;
  if (!local) {
    RenderRequestHeader header;
    header.sequence = sequence;
    header.workload_pixels = workload;
    header.priority = config_.request_priority;
    header.cache_epoch = cache_epochs_[device_index];
    header.apply_floor = apply_floors_[device_index];
    header.mirror_rev = mirror_revs_[device_index]++;
    render_message = make_render_message(
        header, frame, *render_caches_[device_index], stats_.render_cache,
        device_manifest(device_index));
  }

  // Charge the user-device CPU for serialization + compression; the packed
  // bytes leave once the (single) packing core gets through them.
  const std::size_t total_bytes = render_message.size() + state_message.size();
  double serialize_s = 0.0;
  if (total_bytes > 0) {
    serialize_s = static_cast<double>(total_bytes) * 8.0 /
                      config_.serialize_throughput_bps +
                  0.0003;
    stats_.serialize_seconds += serialize_s;
    cpu_busy_until_ =
        std::max(cpu_busy_until_, loop_.now()) + seconds(serialize_s);
    if (runtime::kTracingCompiledIn && tracer_ != nullptr) {
      // Queue wait on the packing core counts toward serialize: the span
      // runs from issue until the payload leaves the user device.
      tracer_->span(runtime::Stage::kSerialize, endpoint_.id(), sequence,
                    loop_.now(), cpu_busy_until_);
      const auto& rc = stats_.render_cache;
      const auto& sc = stats_.state_cache;
      const double deduped = static_cast<double>(
          (rc.bytes_out - render_cache_before.bytes_out) +
          (sc.bytes_out - state_cache_before.bytes_out));
      tracer_->instant(
          "encode", endpoint_.id(), loop_.now(),
          {{"sequence", static_cast<double>(sequence)},
           {"cache_hits",
            static_cast<double>((rc.hits - render_cache_before.hits) +
                                (sc.hits - state_cache_before.hits))},
           {"cache_misses",
            static_cast<double>((rc.misses - render_cache_before.misses) +
                                (sc.misses - state_cache_before.misses))},
           {"raw_bytes", static_cast<double>(
                             (rc.bytes_in - render_cache_before.bytes_in) +
                             (sc.bytes_in - state_cache_before.bytes_in))},
           {"deduped_bytes", deduped},
           {"wire_bytes", static_cast<double>(total_bytes)},
           {"lz4_ratio", deduped > 0.0
                             ? static_cast<double>(total_bytes) / deduped
                             : 1.0}});
    }
  }

  if (!local) stats_.frames_offloaded++;
  stats_.bytes_sent += total_bytes;
  const std::uint64_t depth = in_flight_.size() + 1;
  stats_.pending_depth_sum += depth;
  stats_.pending_depth_samples++;
  stats_.pending_depth_max = std::max(stats_.pending_depth_max, depth);
  if (!state_message.empty()) stats_.state_messages++;

  InFlight flight;
  flight.issued = loop_.now();
  flight.device_index = device_index;
  flight.workload = workload;
  flight.sent_bytes = total_bytes;
  flight.serialize_s = serialize_s;
  flight.local = local;
  // Shadow replica: offloaded frames contribute their state records now, so
  // the local context can take over mid-stream; fallback frames replay in
  // full when they render (exactly once either way).
  if (!local && local_gles_ != nullptr) {
    try {
      wire::replay_frame(state_subset(frame), *local_gles_);
    } catch (const Error&) {
      // A divergent replica only degrades fallback pixels, never the stream.
    }
  }
  flight.state_applied_locally = !local;
  flight.records = std::move(frame);
  in_flight_.emplace(sequence, std::move(flight));

  if (!state_message.empty() || !render_message.empty()) {
    schedule_payload_send(sequence, device_index, std::move(state_message),
                          std::move(render_message));
  }

  if (local) render_locally(sequence);
  return true;
}

void GBoosterRuntime::schedule_payload_send(std::uint64_t sequence,
                                            std::size_t device_index,
                                            Bytes state_message,
                                            Bytes render_message) {
  const net::NodeId renderer = device_nodes_[device_index];
  // The payloads were encoded against the *current* cache generations; if
  // either mirror restarts while they wait behind the packing core, they
  // reference a dead epoch and must not be sent (see the epoch checks in
  // the lambda).
  const std::uint32_t render_epoch = cache_epochs_[device_index];
  const std::uint32_t state_epoch = state_epoch_;
  loop_.schedule_at(
      cpu_busy_until_,
      [this, sequence, device_index, renderer, render_epoch, state_epoch,
       state_message = std::move(state_message),
       render_message = std::move(render_message)]() mutable {
        if (!state_message.empty()) {
          if (state_epoch != state_epoch_) {
            // The shared state cache restarted while this payload was
            // queued; delivering it after the replicas reset would poison
            // their mirrors again. Drop it and float the floor so nobody
            // waits on the sequence.
            state_apply_floor_ = std::max(state_apply_floor_, sequence + 1);
          } else {
            // Track acks only for devices that can answer: a dead member
            // would pin the message outstanding for its whole outage. The
            // excluded member misses the message for real, so flag it for
            // a revival snapshot (the epoch-reset baseline already reset
            // once at death; every message since carries the new epoch).
            std::vector<net::NodeId> members;
            for (std::size_t i = 0; i < device_nodes_.size(); ++i) {
              if (dispatcher_.healthy(i)) {
                members.push_back(device_nodes_[i]);
              } else if (config_.snapshot_recovery) {
                needs_snapshot_[i] = true;
              }
            }
            if (members.empty()) {
              // Every replica is dead: there is no one to multicast to (and
              // send_multicast rejects an empty group). They all miss this
              // sequence for real — float the floor so nobody waits on it;
              // the snapshot flags set above heal the replicas on revival.
              state_apply_floor_ = std::max(state_apply_floor_, sequence + 1);
            } else {
              const std::uint64_t id = endpoint_.send_multicast(
                  config_.state_group, members, std::move(state_message));
              msg_to_seq_[{config_.state_group, id}] = sequence;
              state_msgs_sent_ = id + 1;
              const auto it = in_flight_.find(sequence);
              if (it != in_flight_.end()) {
                it->second.has_state_msg = true;
                it->second.state_msg_id = id;
              }
            }
          }
        }
        if (render_message.empty()) return;
        const auto it = in_flight_.find(sequence);
        // The frame may have been re-routed (device died) or reclaimed
        // (gap timeout) while the packing core was busy; don't send stale
        // payloads to the old renderer.
        if (it == in_flight_.end() || it->second.local ||
            it->second.device_index != device_index) {
          return;
        }
        if (cache_epochs_[device_index] != render_epoch) {
          // Mirror restarted while this payload was queued: its encoding
          // references the dead epoch. The device skips the sequence via
          // the floor on later frames; the presenter's gap timeout
          // reclaims the frame itself.
          apply_floors_[device_index] =
              std::max(apply_floors_[device_index], sequence + 1);
          return;
        }
        const std::uint64_t id =
            endpoint_.send(renderer, std::move(render_message));
        it->second.has_render_msg = true;
        it->second.render_msg_id = id;
        msg_to_seq_[{renderer, id}] = sequence;
        if (runtime::kTracingCompiledIn && tracer_ != nullptr) {
          tracer_->begin(runtime::Stage::kUplink, endpoint_.id(), sequence,
                         loop_.now());
        }
      });
}

// --- governor-mode dispatch (DESIGN.md §11) ---------------------------------

bool GBoosterRuntime::on_frame_governed(wire::FrameCommands frame) {
  const std::uint64_t sequence = frame.sequence;
  const double workload = workload_override_
                              ? workload_override_()
                              : recorder_->last_frame_profile().workload_pixels;
  const bool no_healthy = dispatcher_.healthy_count() == 0;
  const bool local = no_healthy && config_.enable_local_fallback;

  // All devices dead, no fallback: admitting the frame would only flood a
  // dead device's stream with payloads the gap timeout later reclaims (the
  // legacy diagnostic behaviour). Shed at the head instead: no transport
  // traffic, no stall — the presenter steps straight over the sequence.
  if (no_healthy && !local) {
    stats_.frames_shed_void++;
    shed_sequences_.insert(sequence);
    if (device_nodes_.size() > 1) {
      // The replicas miss this frame's state records for real (the shadow
      // context still has them, so a revival snapshot recovers the stream).
      state_apply_floor_ = std::max(state_apply_floor_, sequence + 1);
      if (config_.snapshot_recovery) {
        needs_snapshot_.assign(needs_snapshot_.size(), true);
      }
    } else {
      apply_floors_[0] = std::max(apply_floors_[0], sequence + 1);
    }
    if (runtime::kTracingCompiledIn && tracer_ != nullptr) {
      tracer_->instant("frame_shed", endpoint_.id(), loop_.now(),
                       {{"sequence", static_cast<double>(sequence)},
                        {"cause_void", 1.0}});
    }
    present_in_order();
    return true;
  }

  // Keep-latest: when the window is full, the oldest frame still waiting for
  // the packing core is shed to make room — the new frame carries fresher
  // input, and a frame that has not been dispatched yet is the only one that
  // can be reclaimed without desyncing a cache mirror.
  if (static_cast<int>(active_in_flight()) >=
      governor_->depth_cap(config_.max_pending_requests)) {
    for (auto& [old_sequence, old_flight] : in_flight_) {
      if (!old_flight.dispatched && !old_flight.local && !old_flight.shed) {
        stats_.frames_shed_window++;
        mark_shed(old_sequence, old_flight, "window");
        break;
      }
    }
  }

  std::size_t device_index = 0;
  if (!local) {
    device_index = dispatcher_.pick(workload);
    trace_dispatch(sequence, workload, device_index);
    dispatcher_.on_assigned(device_index, workload);
  }

  const std::uint64_t depth = active_in_flight() + 1;
  stats_.pending_depth_sum += depth;
  stats_.pending_depth_samples++;
  stats_.pending_depth_max = std::max(stats_.pending_depth_max, depth);

  InFlight flight;
  flight.issued = loop_.now();
  flight.device_index = device_index;
  flight.workload = workload;
  flight.local = local;
  // Shadow replica: same contract as the legacy path (state records feed the
  // local context at issue for offloaded frames).
  if (!local && local_gles_ != nullptr) {
    try {
      wire::replay_frame(state_subset(frame), *local_gles_);
    } catch (const Error&) {
      // A divergent replica only degrades fallback pixels, never the stream.
    }
  }
  flight.state_applied_locally = !local;
  flight.records = std::move(frame);
  in_flight_.emplace(sequence, std::move(flight));

  // Encode is deferred to pump pickup — the frame may still be shed, and a
  // shed frame must never have touched the mirrors. Local frames also flow
  // through the queue so their state-only multicast encodes in sequence
  // order against the shared state cache.
  dispatch_queue_.push_back(sequence);
  schedule_pump();
  return true;
}

void GBoosterRuntime::mark_shed(std::uint64_t sequence, InFlight& flight,
                                const char* cause, bool release_assignment) {
  flight.shed = true;
  shed_sequences_.insert(sequence);
  if (release_assignment) {
    dispatcher_.on_abandoned(flight.device_index, flight.workload);
  }
  // The renderer will never see this sequence; in multi-device mode its
  // state-only copy still flows (contiguity), so only the render stream
  // floor floats.
  apply_floors_[flight.device_index] =
      std::max(apply_floors_[flight.device_index], sequence + 1);
  if (runtime::kTracingCompiledIn && tracer_ != nullptr) {
    tracer_->instant("frame_shed", endpoint_.id(), loop_.now(),
                     {{"sequence", static_cast<double>(sequence)},
                      {std::string("cause_") + cause, 1.0}});
  }
  // Wake the presenter on its own event: it may reclaim in_flight_ entries,
  // and callers of mark_shed still hold references into the table.
  loop_.schedule_at(loop_.now(), [this] { present_in_order(); });
}

void GBoosterRuntime::schedule_pump() {
  if (pump_scheduled_ || dispatch_queue_.empty()) return;
  pump_scheduled_ = true;
  loop_.schedule_at(std::max(loop_.now(), cpu_busy_until_), [this] {
    pump_scheduled_ = false;
    pump_dispatch_queue();
  });
}

void GBoosterRuntime::pump_dispatch_queue() {
  while (!dispatch_queue_.empty()) {
    if (cpu_busy_until_ > loop_.now()) {
      schedule_pump();
      return;
    }
    const std::uint64_t sequence = dispatch_queue_.front();
    dispatch_queue_.pop_front();
    const auto it = in_flight_.find(sequence);
    if (it == in_flight_.end()) continue;  // reclaimed by the gap timeout
    InFlight& flight = it->second;
    if (flight.dispatched) continue;  // re-dispatched by the failure path

    // Deadline shedding: a frame that sat in the queue past the governor's
    // staleness deadline carries input the player has visually moved past.
    if (!flight.shed && !flight.local &&
        loop_.now() - flight.issued > governor_->shed_deadline()) {
      stats_.frames_shed_deadline++;
      mark_shed(sequence, flight, "deadline");
    }

    // Encode now, against the current mirrors. A shed frame still sends its
    // state-only copy in multi-device mode — a hole in the state stream
    // would poison every replica's decode timeline — with renderer_node 0 so
    // every replica applies it. Local frames multicast state the same way.
    const bool send_render_msg = !flight.shed && !flight.local;
    Bytes state_message;
    if (device_nodes_.size() > 1) {
      StateHeader header;
      header.sequence = sequence;
      header.renderer_node =
          send_render_msg ? device_nodes_[flight.device_index] : 0;
      header.cache_epoch = state_epoch_;
      header.apply_floor = state_apply_floor_;
      state_message =
          make_state_message(header, state_subset(flight.records),
                             state_cache_, stats_.state_cache,
                             state_manifest());
    }
    Bytes render_message;
    if (send_render_msg) {
      RenderRequestHeader header;
      header.sequence = sequence;
      header.workload_pixels = flight.workload;
      header.priority = config_.request_priority;
      header.cache_epoch = cache_epochs_[flight.device_index];
      header.apply_floor = apply_floors_[flight.device_index];
      header.quality = governor_->quality();
      header.skip_threshold = governor_->skip_threshold();
      header.mirror_rev = mirror_revs_[flight.device_index]++;
      flight.quality = header.quality;
      render_message = make_render_message(
          header, flight.records, *render_caches_[flight.device_index],
          stats_.render_cache, device_manifest(flight.device_index));
      flight.dispatched = true;
      stats_.frames_offloaded++;
    }

    const std::size_t total_bytes =
        render_message.size() + state_message.size();
    if (total_bytes > 0) {
      const double serialize_s = static_cast<double>(total_bytes) * 8.0 /
                                     config_.serialize_throughput_bps +
                                 0.0003;
      stats_.serialize_seconds += serialize_s;
      cpu_busy_until_ =
          std::max(cpu_busy_until_, loop_.now()) + seconds(serialize_s);
      stats_.bytes_sent += total_bytes;
      if (send_render_msg) {
        flight.sent_bytes = total_bytes;
        flight.serialize_s = serialize_s;
        if (runtime::kTracingCompiledIn && tracer_ != nullptr) {
          tracer_->span(runtime::Stage::kSerialize, endpoint_.id(), sequence,
                        loop_.now(), cpu_busy_until_);
        }
      }
      if (!state_message.empty()) stats_.state_messages++;
      schedule_payload_send(sequence, flight.device_index,
                            std::move(state_message),
                            std::move(render_message));
    }
    if (flight.local) {
      render_locally(sequence);
    } else if (flight.shed) {
      // Nothing further will reference this frame: its dispatcher assignment
      // was released at shed time and its state copy (if any) is already in
      // the transport's hands.
      erase_msg_entries(flight);
      in_flight_.erase(it);
    }
  }
}

// --- shared-store dedup (DESIGN.md §14) -------------------------------------

const compress::SharedManifest* GBoosterRuntime::device_manifest(
    std::size_t index) const {
  return manifests_[index].get();
}

void GBoosterRuntime::join_tick() {
  // The endpoint may not be routed yet (runtime constructed before media
  // binding); retry until transmissions can actually flow. The finish_join
  // deadline armed at construction bounds the wait either way.
  if (endpoint_.route() == nullptr) {
    loop_.schedule_after(ms(1), [this] { join_tick(); });
    return;
  }
  if (join_sent_) return;
  join_sent_ = true;
  for (const net::NodeId node : device_nodes_) {
    endpoint_.send(node, make_join_message(config_.app_id));
  }
}

void GBoosterRuntime::on_manifest(net::NodeId src,
                                  std::span<const std::uint8_t> message) {
  const auto entries = parse_manifest_message(message);
  check(entries.has_value(), "malformed manifest message");
  const auto index = index_of(src);
  if (!index.has_value()) return;
  auto manifest = std::make_unique<compress::SharedManifest>();
  for (const compress::ManifestEntry& entry : *entries) manifest->add(entry);
  manifests_[*index] = std::move(manifest);
  if (runtime::kTracingCompiledIn && tracer_ != nullptr) {
    tracer_->instant(
        "manifest_received", src, loop_.now(),
        {{"entries", static_cast<double>(manifests_[*index]->size())},
         {"payload_bytes",
          static_cast<double>(manifests_[*index]->payload_bytes())}});
  }
  if (join_pending_) {
    for (const auto& m : manifests_) {
      if (m == nullptr) return;  // still waiting on another device
    }
    finish_join();
  } else {
    // Late reply (after the deadline) or a hot-joined device's grant: render
    // streams use it from the next frame; the state intersection may become
    // valid again now that every device has answered.
    recompute_state_manifest();
  }
}

void GBoosterRuntime::finish_join() {
  if (!join_pending_) return;
  join_pending_ = false;
  recompute_state_manifest();
  for (const auto& m : manifests_) {
    if (m == nullptr) continue;
    stats_.manifest_entries = std::max<std::uint64_t>(
        stats_.manifest_entries, m->size());
    stats_.manifest_bytes =
        std::max<std::uint64_t>(stats_.manifest_bytes, m->payload_bytes());
  }
  if (join_hold_.empty()) return;
  stats_.manifest_wait_ms = (loop_.now() - join_hold_started_).ms();
  std::vector<wire::FrameCommands> held;
  held.swap(join_hold_);
  for (wire::FrameCommands& frame : held) {
    (void)on_frame(std::move(frame));
  }
}

void GBoosterRuntime::recompute_state_manifest() {
  state_manifest_valid_ = false;
  state_manifest_ = compress::SharedManifest();
  // Single-device sessions send no state multicasts; nothing to compute.
  if (!config_.shared_dedup || device_nodes_.size() <= 1) return;
  for (const auto& m : manifests_) {
    if (m == nullptr) return;  // a silent device forces inline state uploads
  }
  state_manifest_ = *manifests_[0];
  for (std::size_t j = 1; j < manifests_.size(); ++j) {
    state_manifest_.intersect_with(*manifests_[j]);
  }
  state_manifest_valid_ = true;
}

// --- failure handling -------------------------------------------------------

void GBoosterRuntime::heartbeat_tick() {
  // The endpoint may not be routed yet (runtime constructed before media
  // binding); probe once transmissions can actually flow.
  if (endpoint_.route() != nullptr) {
    for (std::size_t j = 0; j < device_nodes_.size(); ++j) {
      if (migration_dark_[j]) continue;  // disconnected mid cold-restart
      const std::uint64_t nonce = next_ping_nonce_++;
      pending_pings_[nonce] = PendingPing{j, loop_.now()};
      endpoint_.send_unreliable(device_nodes_[j], make_ping_message(nonce));
      loop_.schedule_after(config_.health.probe_timeout,
                           [this, nonce] { on_ping_timeout(nonce); });
    }
  }
  loop_.schedule_after(config_.health.probe_interval,
                       [this] { heartbeat_tick(); });
}

void GBoosterRuntime::on_ping_timeout(std::uint64_t nonce) {
  const auto it = pending_pings_.find(nonce);
  if (it == pending_pings_.end()) return;  // answered in time
  const std::size_t index = it->second.device_index;
  pending_pings_.erase(it);
  stats_.heartbeat_timeouts++;
  if (dispatcher_.record_failure(index, config_.health.failure_threshold)) {
    handle_device_death(index);
  }
}

void GBoosterRuntime::on_pong(std::uint64_t nonce) {
  const auto it = pending_pings_.find(nonce);
  if (it == pending_pings_.end()) return;  // already counted as a timeout
  const std::size_t index = it->second.device_index;
  pending_pings_.erase(it);
  note_device_alive(index);
}

void GBoosterRuntime::note_device_alive(std::size_t index) {
  if (dispatcher_.record_success(index)) {
    stats_.device_reintegrations++;
    if (runtime::kTracingCompiledIn && tracer_ != nullptr) {
      tracer_->instant("device_reintegrated", device_nodes_[index],
                       loop_.now());
    }
    if (!config_.snapshot_recovery) {
      // Epoch-reset baseline: the missed window is gone for good (death
      // stopped its state traffic), so jump the replica's apply cursor past
      // it — the legacy fast-forward reintegration. Its GL state stays
      // stale; that deficiency is what the snapshot path exists to fix.
      apply_floors_[index] =
          std::max(apply_floors_[index], recorder_->next_sequence());
    }
  }
  // A replica that missed state multicasts (abandoned toward it while it was
  // dead or partitioned) would rejoin with stale GL state: resync it before
  // Eq. 4 hands it frames again. Also retries a resync whose own message
  // was abandoned.
  if (needs_snapshot_[index] && dispatcher_.healthy(index)) {
    send_snapshot(index);
  }
}

void GBoosterRuntime::on_transport_abandon(net::NodeId stream,
                                           std::uint64_t message_id) {
  const auto snap_it = snapshot_msgs_.find({stream, message_id});
  if (snap_it != snapshot_msgs_.end()) {
    // The resync itself never arrived; retry on the device's next liveness
    // signal (pong or frame result).
    needs_snapshot_[snap_it->second] = true;
    snapshot_msgs_.erase(snap_it);
    return;
  }
  const auto it = msg_to_seq_.find({stream, message_id});
  const bool tracked = it != msg_to_seq_.end();
  const std::uint64_t sequence = tracked ? it->second : 0;
  if (tracked) msg_to_seq_.erase(it);

  if (stream == config_.state_group) {
    // The frame usually displayed long ago — the renderer acked its copy and
    // drew it — while the transport kept repairing the copies toward the
    // stragglers, so the in-flight table says nothing about who missed what.
    // Attribution instead comes from the transport: a multicast abandon
    // names the receivers that never acked all chunks — everyone else
    // delivered and applied the message.
    if (tracked) {
      const auto fit = in_flight_.find(sequence);
      if (fit != in_flight_.end()) fit->second.has_state_msg = false;
    }
    // When at least one replica is unaffected, resync just the stragglers
    // with a GL-state snapshot (their decode timelines poison themselves on
    // the sequence gap and quarantine until it lands) instead of restarting
    // the shared cache for the whole fleet.
    std::vector<std::size_t> missed;
    for (const net::NodeId node : endpoint_.last_abandoned_receivers()) {
      const auto idx = index_of(node);
      if (idx.has_value()) missed.push_back(*idx);
    }
    if (config_.snapshot_recovery && !missed.empty() &&
        missed.size() < device_nodes_.size()) {
      for (const std::size_t idx : missed) {
        // An outage window abandons one state message per frame; the first
        // resync covers all of them at once (its mirror and GL state were
        // captured after every already-sent message), so skip abandons the
        // last snapshot already absorbed.
        if (message_id < snapshot_covers_ids_[idx]) continue;
        if (dispatcher_.healthy(idx)) {
          if (!snapshot_pending(idx)) send_snapshot(idx);
        } else {
          // Dead: the breaker's revival path resyncs it (note_device_alive).
          needs_snapshot_[idx] = true;
        }
      }
      stats_.scoped_state_recoveries++;
      return;
    }
    // Every replica missed it, the loss cannot be attributed, or snapshot
    // recovery is disabled (the §8 baseline): restart the shared cache
    // under a new epoch so every mirror resets in lockstep, and tell
    // receivers not to wait on the lost sequence. Unattributable losses of
    // already-completed frames have no sequence to floor — and a completed
    // frame proves the renderer applied the message, so a total miss is
    // impossible there.
    if (!tracked && (config_.snapshot_recovery || missed.empty())) return;
    state_epoch_++;
    state_cache_ = compress::CommandCache();
    stats_.state_epoch_resets++;
    // The attributed-but-untracked case (snapshot recovery off) has no
    // sequence; the epoch bump alone re-bases every replica's timeline.
    if (tracked) {
      state_apply_floor_ = std::max(state_apply_floor_, sequence + 1);
    }
    return;
  }
  // Re-entry from a cohort abandon below (or from handle_device_death's
  // stream sweep): the initiating call resets the mirror and re-dispatches
  // every affected frame at once; the map cleanup above is all that is left
  // to do per message.
  if (stream_abandon_in_progress_) return;

  const auto index = index_of(stream);
  if (!index.has_value()) return;

  // The abandoned message's records were inserted into the sender-side
  // mirror at encode time, but the device will never decode them — the
  // mirrors are desynced even if the device is alive and well (it may have
  // simply sat behind a transient partition). This holds even when the
  // frame itself is gone (the presenter's gap timeout reclaimed it while
  // the transport kept repairing its message) or was re-dispatched
  // elsewhere: the *stream's* device missed the records either way. The
  // next frame to it would reference records it never saw and hard-fail its
  // decode. Restart the pair under a new epoch, and never wait on the lost
  // sequence.
  InFlight* flight = nullptr;
  if (tracked) {
    const auto fit = in_flight_.find(sequence);
    if (fit != in_flight_.end() && !fit->second.local &&
        fit->second.device_index == *index) {
      flight = &fit->second;
      flight->has_render_msg = false;
    }
  }
  reset_render_mirror(*index);
  if (tracked) {
    apply_floors_[*index] = std::max(apply_floors_[*index], sequence + 1);
  }
  // Every other in-flight render message toward this device is poison now:
  // it was encoded after the lost message inserted records into the retired
  // mirror, so decoding it would reference records the device never saw.
  // Drop the whole cohort and re-dispatch it under the fresh epoch.
  std::vector<std::uint64_t> poisoned;
  for (auto& [other_sequence, other] : in_flight_) {
    if ((!tracked || other_sequence != sequence) && !other.local &&
        !other.shed && other.device_index == *index && other.has_render_msg) {
      other.has_render_msg = false;
      // The cohort's messages die with the stream sweep below; the device
      // must not hold its in-order apply cursor for them (a redispatched
      // copy replays past the cursor via its redispatch flag).
      apply_floors_[*index] =
          std::max(apply_floors_[*index], other_sequence + 1);
      poisoned.push_back(other_sequence);
    }
  }
  stream_abandon_in_progress_ = true;
  endpoint_.abandon_stream(stream);
  stream_abandon_in_progress_ = false;
  if (!config_.health.enabled) {
    // Monitoring off: no breaker to consult and no re-dispatch — the gap
    // timeout reclaims the frames.
    return;
  }
  // The transport exhausted its full retry budget toward this device —
  // decisive evidence on its own (one count for the whole cohort).
  if (dispatcher_.record_failure(*index, 1)) {
    handle_device_death(*index);  // re-dispatches the cohort in its sweep
  } else {
    if (flight != nullptr) redispatch_frame(sequence);
    for (const std::uint64_t other_sequence : poisoned) {
      redispatch_frame(other_sequence);
    }
  }
}

void GBoosterRuntime::reset_render_mirror(std::size_t index) {
  render_caches_[index] = std::make_unique<compress::CommandCache>();
  cache_epochs_[index]++;
  mirror_revs_[index] = 0;
  stats_.render_epoch_resets++;
  if (runtime::kTracingCompiledIn && tracer_ != nullptr) {
    tracer_->instant("render_mirror_reset", device_nodes_[index], loop_.now(),
                     {{"epoch", static_cast<double>(cache_epochs_[index])}});
  }
}

void GBoosterRuntime::handle_device_death(std::size_t index) {
  stats_.device_failovers++;
  if (runtime::kTracingCompiledIn && tracer_ != nullptr) {
    tracer_->instant("device_dead", device_nodes_[index], loop_.now());
  }
  // The device's cache mirror is now unreliable (it may never have decoded
  // the tail of the stream): restart the pair under a new epoch.
  reset_render_mirror(index);
  // Drop outstanding render traffic to the corpse; the abandon handler
  // re-entries only clean up their message mappings (the orphan sweep below
  // re-dispatches every stranded frame in one pass).
  stream_abandon_in_progress_ = true;
  endpoint_.abandon_stream(device_nodes_[index]);
  stream_abandon_in_progress_ = false;
  // Stop repairing state multicasts toward it too: a dead member's pending
  // acks would spend the whole outage on retransmissions it cannot hear and
  // hold the group stream floor back for everyone. From here until revival
  // it misses the state stream for real — heal it on revival with a
  // GL-state snapshot, or (snapshot recovery off) restart the shared cache
  // once per death so the new epoch re-bases its decode timeline too.
  endpoint_.forget_receiver(device_nodes_[index]);
  if (config_.snapshot_recovery) {
    needs_snapshot_[index] = true;
  } else {
    state_epoch_++;
    state_cache_ = compress::CommandCache();
    stats_.state_epoch_resets++;
  }
  // Requests already fully delivered (or whose send is still queued behind
  // the packing core) have no outstanding message: sweep the leftovers.
  std::vector<std::uint64_t> orphans;
  for (const auto& [sequence, flight] : in_flight_) {
    // Shed frames already released their assignment; only live ones move.
    if (!flight.local && !flight.shed && flight.device_index == index) {
      orphans.push_back(sequence);
    }
  }
  for (const std::uint64_t sequence : orphans) redispatch_frame(sequence);
}

void GBoosterRuntime::redispatch_frame(std::uint64_t sequence) {
  InFlight& flight = in_flight_.at(sequence);
  const std::size_t old_index = flight.device_index;
  dispatcher_.on_abandoned(old_index, flight.workload);
  if (flight.has_render_msg) {
    msg_to_seq_.erase({device_nodes_[old_index], flight.render_msg_id});
    flight.has_render_msg = false;
  }
  // The old device will never see this sequence again; when it recovers it
  // must not wait for it (its state copy, if any, still flows separately).
  apply_floors_[old_index] =
      std::max(apply_floors_[old_index], sequence + 1);

  // A frame still waiting in the governor's dispatch queue was never
  // encoded: the pump routes it (fresh render message to the new target, or
  // local render) in queue order, so its state-only multicast encodes
  // against the shared cache in sequence order.
  const bool queued =
      governor_ != nullptr && !flight.dispatched && !flight.local;
  if (dispatcher_.healthy_count() == 0) {
    if (config_.enable_local_fallback) {
      if (queued) {
        flight.local = true;  // the pump starts the render at pickup
      } else {
        render_locally(sequence);
      }
    } else if (queued) {
      // No fallback and nowhere to send: shed instead of letting the pump
      // encode a payload into the void. The assignment was released above.
      stats_.frames_shed_void++;
      mark_shed(sequence, flight, "void", /*release_assignment=*/false);
    }
    // Otherwise leave the frame in flight; the presenter's gap timeout
    // reclaims it.
    return;
  }
  const std::size_t target = dispatcher_.pick(flight.workload);
  dispatcher_.on_assigned(target, flight.workload);
  flight.device_index = target;
  if (queued) return;  // never sent anywhere: the pump dispatches normally
  stats_.frames_redispatched++;
  send_render(sequence, target);
}

void GBoosterRuntime::send_render(std::uint64_t sequence,
                                  std::size_t device_index) {
  InFlight& flight = in_flight_.at(sequence);
  flight.dispatched = true;  // the pump must not dispatch it a second time
  RenderRequestHeader header;
  header.sequence = sequence;
  header.workload_pixels = flight.workload;
  header.priority = config_.request_priority;
  // Re-dispatch: the target already holds (or will hold) this frame's state
  // records from the multicast copy — it must replay draws only.
  header.redispatch = true;
  header.cache_epoch = cache_epochs_[device_index];
  header.apply_floor = apply_floors_[device_index];
  header.mirror_rev = mirror_revs_[device_index]++;
  Bytes message = make_render_message(
      header, flight.records, *render_caches_[device_index],
      stats_.render_cache, device_manifest(device_index));

  const double serialize_s = static_cast<double>(message.size()) * 8.0 /
                                 config_.serialize_throughput_bps +
                             0.0003;
  stats_.serialize_seconds += serialize_s;
  cpu_busy_until_ =
      std::max(cpu_busy_until_, loop_.now()) + seconds(serialize_s);
  stats_.bytes_sent += message.size();
  flight.sent_bytes += message.size();

  const net::NodeId renderer = device_nodes_[device_index];
  const std::uint32_t render_epoch = cache_epochs_[device_index];
  loop_.schedule_at(
      cpu_busy_until_,
      [this, sequence, device_index, renderer, render_epoch,
       message = std::move(message)]() mutable {
        const auto it = in_flight_.find(sequence);
        if (it == in_flight_.end() || it->second.local ||
            it->second.device_index != device_index) {
          return;  // re-routed again (or reclaimed) while packing
        }
        if (cache_epochs_[device_index] != render_epoch) {
          // Mirror restarted while this payload was queued (see on_frame).
          apply_floors_[device_index] =
              std::max(apply_floors_[device_index], sequence + 1);
          return;
        }
        const std::uint64_t id = endpoint_.send(renderer, std::move(message));
        it->second.has_render_msg = true;
        it->second.render_msg_id = id;
        msg_to_seq_[{renderer, id}] = sequence;
        if (runtime::kTracingCompiledIn && tracer_ != nullptr) {
          tracer_->begin(runtime::Stage::kUplink, endpoint_.id(), sequence,
                         loop_.now());
        }
      });
}

bool GBoosterRuntime::snapshot_pending(std::size_t index) const {
  // snapshot_msgs_ keeps acked entries around (only abandonment and
  // supersession erase them), so consult the transport for liveness.
  for (const auto& [key, idx] : snapshot_msgs_) {
    if (idx == index && endpoint_.is_outstanding(key.first, key.second)) {
      return true;
    }
  }
  return false;
}

void GBoosterRuntime::send_snapshot(std::size_t index) {
  needs_snapshot_[index] = false;
  snapshot_covers_ids_[index] = state_msgs_sent_;
  // At most one resync per device is tracked for retry; older entries for
  // this device are either acked (harmless) or superseded by this one.
  std::erase_if(snapshot_msgs_,
                [index](const auto& kv) { return kv.second == index; });
  SnapshotHeader header;
  // Every event-loop callback is a frame boundary: the shadow context holds
  // exactly the state of frames below next_sequence(), and the state cache
  // holds exactly the encodings of the state messages built for them — the
  // snapshot and its mirror are self-consistent by construction.
  header.sequence = recorder_->next_sequence();
  header.state_cache_epoch = state_epoch_;
  header.render_cache_epoch = cache_epochs_[index];
  const Bytes gl_state =
      gles::capture_gl_state(recorder_->shadow()).serialize();
  const Bytes mirror = state_cache_.serialize();
  Bytes message = make_snapshot_message(header, gl_state, mirror);

  // Charge the packing core for the serialization, but transmit immediately:
  // a deferred send could straddle an epoch reset and ship a stale mirror.
  const double serialize_s = static_cast<double>(message.size()) * 8.0 /
                                 config_.serialize_throughput_bps +
                             0.0003;
  stats_.serialize_seconds += serialize_s;
  cpu_busy_until_ =
      std::max(cpu_busy_until_, loop_.now()) + seconds(serialize_s);
  stats_.bytes_sent += message.size();
  stats_.snapshots_sent++;
  const net::NodeId node = device_nodes_[index];
  const std::uint64_t id = endpoint_.send(node, std::move(message));
  snapshot_msgs_[{node, id}] = index;
  if (runtime::kTracingCompiledIn && tracer_ != nullptr) {
    tracer_->instant("snapshot_sent", node, loop_.now(),
                     {{"sequence", static_cast<double>(header.sequence)}});
  }
}

std::size_t GBoosterRuntime::add_service_device(const ServiceDeviceInfo& info) {
  check(!index_of(info.node).has_value(),
        "hot-join: service device node already present");
  const bool was_single = device_nodes_.size() == 1;
  const std::size_t index = dispatcher_.add_device(info);
  device_nodes_.push_back(info.node);
  render_caches_.push_back(std::make_unique<compress::CommandCache>());
  cache_epochs_.push_back(0);
  mirror_revs_.push_back(0);
  apply_floors_.push_back(0);
  needs_snapshot_.push_back(false);
  snapshot_covers_ids_.push_back(0);
  manifests_.push_back(nullptr);
  migration_dark_.push_back(0);
  stats_.devices_hot_joined++;
  if (runtime::kTracingCompiledIn && tracer_ != nullptr) {
    tracer_->instant("device_hot_joined", info.node, loop_.now());
  }
  if (config_.shared_dedup) {
    // kJoin rides the newcomer's reliable stream ahead of the snapshot
    // below, so its session binds the shared store before it decodes
    // anything. The state intersection shrinks to invalid until the
    // newcomer's manifest arrives — state uploads go inline meanwhile, which
    // every replica can decode.
    if (join_sent_) {
      endpoint_.send(info.node, make_join_message(config_.app_id));
    }
    recompute_state_manifest();
  }
  // Bring the newcomer to the present: GL state, state-cache mirror, and
  // apply cursor all jump to the current sequence.
  send_snapshot(index);
  // Leaving single-device mode: state multicasts start with the next frame,
  // and the incumbent — which has only ever seen full render messages — must
  // be re-based onto that timeline too.
  if (was_single) send_snapshot(0);
  return index;
}

void GBoosterRuntime::migrate_service_device(std::size_t index,
                                             const ServiceDeviceInfo& target,
                                             const MigrationOptions& options) {
  check(index < device_nodes_.size(), "migrate: device index out of range");
  check(!index_of(target.node).has_value(),
        "migrate: target node already present");
  const net::NodeId old_node = device_nodes_[index];
  stats_.migrations++;
  if (runtime::kTracingCompiledIn && tracer_ != nullptr) {
    tracer_->instant("migration_begin", old_node, loop_.now(),
                     {{"to", static_cast<double>(target.node)},
                      {"cold", options.cold_restart ? 1.0 : 0.0}});
  }
  // Outstanding heartbeat probes raced the redirect; their timeouts must not
  // charge the slot's new occupant failures it never earned.
  std::erase_if(pending_pings_, [index](const auto& kv) {
    return kv.second.device_index == index;
  });
  if (options.cold_restart) {
    stats_.migration_cold_restarts++;
    cold_restart_device(index, target, options.reconnect_delay);
    return;
  }

  // --- drain: unhook in-flight render messages from the old stream --------
  // The frames stay in flight and the old device keeps rendering them (the
  // overlap that keeps the blackout near one frame interval); their results
  // arrive from a node that no longer maps to a slot and are accepted via
  // the stale-assignee path. The message mappings must go now, though: a
  // late abandon on the old stream would otherwise reset the *new* device's
  // mirror.
  for (auto& [sequence, flight] : in_flight_) {
    if (flight.local || flight.device_index != index || !flight.has_render_msg)
      continue;
    msg_to_seq_.erase({old_node, flight.render_msg_id});
    flight.has_render_msg = false;
  }

  // Proof invalidation (the §14 eviction bugfix): the old device's manifest
  // was granted under a lease the source runtime closes when it releases the
  // session — after that, capacity pressure may evict records the proofs
  // still cover, and a kSharedRef against one would dangle. No proof
  // survives the redirect; the target's kJoin reply re-grants from live
  // residency, and anything no longer resident ships inline (re-publishing
  // it for the sessions that follow).
  manifests_[index] = nullptr;
  if (config_.shared_dedup && join_sent_) {
    endpoint_.send(target.node, make_join_message(config_.app_id));
  }

  // --- re-base + redirect --------------------------------------------------
  // Fresh render mirror under a new epoch (the target starts empty). The
  // shared *state* cache and epoch are untouched — redirecting the endpoint
  // without a state-epoch reset is the point of the mirror transfer; the
  // other replicas never notice the migration.
  reset_render_mirror(index);
  device_nodes_[index] = target.node;
  dispatcher_.replace_device(index, target);
  if (config_.shared_dedup) recompute_state_manifest();
  // Snapshot transfer: shadow GL state + the state-cache mirror, captured at
  // the recorder's next sequence; install jumps the target's apply cursor
  // there, and state multicasts (which include the target from the next
  // frame) decode contiguously from that floor.
  send_snapshot(index);
  // Repairs toward the old device continue through the drain window so the
  // in-flight work it holds actually completes, then stop: a departed node's
  // pending acks would hold the state-group floor for everyone, and its RTO
  // state must not leak to whoever recycles the id.
  loop_.schedule_after(options.drain_timeout, [this, old_node] {
    if (!index_of(old_node).has_value()) endpoint_.forget_receiver(old_node);
  });
}

void GBoosterRuntime::cold_restart_device(std::size_t index,
                                          ServiceDeviceInfo target,
                                          SimTime reconnect_delay) {
  const net::NodeId old_node = device_nodes_[index];
  // From-scratch baseline: the old endpoint vanishes with everything it
  // holds, and every repair toward it stops now.
  migration_dark_[index] = 1;
  stream_abandon_in_progress_ = true;
  endpoint_.abandon_stream(old_node);
  stream_abandon_in_progress_ = false;
  endpoint_.forget_receiver(old_node);
  // The frames already in flight toward the vanished endpoint die with it.
  // The presenter's gap timeout cannot be trusted to reclaim them: it only
  // notices a hole once some *later* frame completes, and when every pending
  // frame sat on the dead slot (the common single-device case) none ever
  // will — the issue window never frees and the session wedges. Count the
  // losses and release the bookkeeping here instead.
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    InFlight& flight = it->second;
    if (flight.local || flight.device_index != index) {
      ++it;
      continue;
    }
    erase_msg_entries(flight);
    if (!flight.shed) {
      dispatcher_.on_abandoned(flight.device_index, flight.workload);
      stats_.frames_dropped++;
      if (!flight.dispatched && governor_ != nullptr &&
          device_nodes_.size() > 1) {
        state_apply_floor_ = std::max(state_apply_floor_, it->first + 1);
      }
    }
    // Marked shed so the presenter advances past the hole without waiting
    // out the gap timeout (the loss was already counted above).
    shed_sequences_.insert(it->first);
    it = in_flight_.erase(it);
  }
  loop_.schedule_after(seconds(0.0), [this] { present_in_order(); });
  // With no mirror transfer to lean on, the reconnecting device can only
  // decode a state stream that starts over: fleet-wide epoch reset (this is
  // exactly the disruption live migration avoids).
  state_epoch_++;
  state_cache_ = compress::CommandCache();
  stats_.state_epoch_resets++;
  manifests_[index] = nullptr;
  reset_render_mirror(index);
  if (config_.shared_dedup) recompute_state_manifest();
  // The slot is dark until the reconnect completes.
  (void)dispatcher_.record_failure(index, /*threshold=*/1);
  loop_.schedule_after(reconnect_delay, [this, index,
                                         target = std::move(target)] {
    std::erase_if(pending_pings_, [index](const auto& kv) {
      return kv.second.device_index == index;
    });
    migration_dark_[index] = 0;
    device_nodes_[index] = target.node;
    dispatcher_.replace_device(index, target);
    if (config_.shared_dedup) {
      if (join_sent_) {
        endpoint_.send(target.node, make_join_message(config_.app_id));
      }
      recompute_state_manifest();
    }
    send_snapshot(index);
    if (runtime::kTracingCompiledIn && tracer_ != nullptr) {
      tracer_->instant("migration_reconnected", target.node, loop_.now());
    }
  });
}

void GBoosterRuntime::render_locally(std::uint64_t sequence) {
  InFlight& flight = in_flight_.at(sequence);
  flight.local = true;
  stats_.frames_rendered_locally++;
  // Single-device sessions send no state copies, so a locally-rendered
  // sequence is a permanent hole in the device's stream: float the floor.
  if (device_nodes_.size() == 1) {
    apply_floors_[0] = std::max(apply_floors_[0], sequence + 1);
  }

  const double render_s = flight.workload / config_.local_capability_pps;
  stats_.local_render_seconds += render_s;
  const SimTime start = std::max(loop_.now(), local_busy_until_);
  local_busy_until_ = start + seconds(render_s);
  if (runtime::kTracingCompiledIn && tracer_ != nullptr) {
    tracer_->span(runtime::Stage::kLocalRender, endpoint_.id(), sequence,
                  start, local_busy_until_);
  }

  loop_.schedule_at(local_busy_until_, [this, sequence] {
    const auto it = in_flight_.find(sequence);
    if (it == in_flight_.end()) return;  // reclaimed by the gap timeout
    InFlight flight = std::move(it->second);
    in_flight_.erase(it);
    erase_msg_entries(flight);
    if (local_gles_ != nullptr) {
      try {
        // Frames that were offloaded first already fed their state records
        // to the replica at issue time; replaying them again would re-run
        // non-idempotent records (glGen*), so only the draws remain.
        wire::replay_frame(flight.state_applied_locally
                               ? draw_subset(flight.records)
                               : flight.records,
                           *local_gles_);
      } catch (const Error&) {
        // Replica divergence costs pixels, not liveness.
      }
    }
    ReadyFrame ready;
    ready.issued = flight.issued;
    ready.displayable_at = loop_.now();
    ready_.emplace(sequence, std::move(ready));
    present_in_order();
  });
}

// --- results ----------------------------------------------------------------

void GBoosterRuntime::on_message(net::NodeId src, net::NodeId stream,
                                 Bytes message) {
  (void)stream;
  // A cold-restarting slot's old device is disconnected: late frame results
  // and pongs from it must neither display nor revive the breaker (they
  // would mask the very blackout the baseline measures).
  if (const auto src_index = index_of(src);
      src_index.has_value() && migration_dark_[*src_index]) {
    return;
  }
  const MsgKind kind = peek_kind(message);
  if (kind == MsgKind::kPong) {
    const auto nonce = parse_pong_message(message);
    if (nonce.has_value()) on_pong(*nonce);
    return;
  }
  if (kind == MsgKind::kManifest) {
    on_manifest(src, message);
    return;
  }
  if (kind != MsgKind::kFrame) return;
  auto parsed = parse_frame_message(message);
  check(parsed.has_value(), "malformed frame result");
  const std::uint64_t sequence = parsed->header.sequence;
  const auto it = in_flight_.find(sequence);
  if (it == in_flight_.end()) return;  // duplicate
  InFlight flight = std::move(it->second);
  in_flight_.erase(it);
  erase_msg_entries(flight);

  const auto src_index = index_of(src);
  if (src_index.has_value()) note_device_alive(*src_index);
  if (!flight.local) {
    if (parsed->header.shed) {
      // Admission control cancelled the GPU pass: release the assignment
      // without feeding the dispatcher a completion time it never earned.
      dispatcher_.on_abandoned(flight.device_index, flight.workload);
    } else if (src_index.has_value() && *src_index == flight.device_index) {
      dispatcher_.on_completed(flight.device_index, flight.workload,
                               loop_.now() - flight.issued);
    } else {
      // A stale assignee delivered after the frame was re-routed: use the
      // result, but release the current assignee's phantom workload (its
      // own result will be ignored as a duplicate).
      dispatcher_.on_abandoned(flight.device_index, flight.workload);
    }
  }
  stats_.bytes_received += parsed->header.nominal_bytes;
  if (governor_ != nullptr && !parsed->header.shed &&
      parsed->header.nominal_bytes > 0 && flight.quality > 0) {
    // Downlink frame cost at its encode quality: prices the bitrate ladder.
    governor_->on_frame_bytes(parsed->header.nominal_bytes, flight.quality);
  }

  if (parsed->header.shed) {
    stats_.frames_shed_service++;
    // Content, when present, belonged to a victim the service had already
    // encoded: feed it to the decoder so the codec reference chain stays
    // intact, but never display it.
    if (parsed->header.has_content) {
      (void)decoder_.decode(parsed->encoded_content);
    }
    if (runtime::kTracingCompiledIn && tracer_ != nullptr) {
      tracer_->end(runtime::Stage::kDownlink, sequence, loop_.now());
      tracer_->instant("frame_shed", endpoint_.id(), loop_.now(),
                       {{"sequence", static_cast<double>(sequence)},
                        {"cause_service", 1.0}});
    }
    shed_sequences_.insert(sequence);
    present_in_order();
    return;
  }

  // Decode cost on the user device (Turbo decode of the nominal-resolution
  // stream), charged before the frame becomes displayable.
  const double decode_s = static_cast<double>(config_.nominal_width) *
                          config_.nominal_height / (config_.decode_mpps * 1e6);
  stats_.decode_seconds += decode_s;
  if (runtime::kTracingCompiledIn && tracer_ != nullptr) {
    tracer_->end(runtime::Stage::kDownlink, sequence, loop_.now());
    tracer_->span(runtime::Stage::kDecode, endpoint_.id(), sequence,
                  loop_.now(), loop_.now() + seconds(decode_s));
  }

  // Eq. 5's t_p estimate for this frame: everything offloading adds on top
  // of rendering itself.
  const double bandwidth_bps =
      config_.link_bandwidth_bps ? config_.link_bandwidth_bps() : 150e6;
  const double uplink_s =
      static_cast<double>(flight.sent_bytes) * 8.0 / bandwidth_bps + 0.001;
  const double downlink_s =
      static_cast<double>(parsed->header.nominal_bytes) * 8.0 / bandwidth_bps +
      0.001;
  const double encode_s = static_cast<double>(config_.nominal_width) *
                          config_.nominal_height /
                          (config_.service_encode_mpps * 1e6);
  stats_.t_p_ms_sum +=
      (flight.serialize_s + uplink_s + encode_s + downlink_s + decode_s) *
      1000.0;

  ReadyFrame ready;
  ready.issued = flight.issued;
  ready.quality = flight.quality;
  ready.displayable_at = loop_.now() + seconds(decode_s);
  if (parsed->header.has_content) {
    auto image = decoder_.decode(parsed->encoded_content);
    if (image) ready.content = std::move(*image);
  }
  ready_.emplace(sequence, std::move(ready));

  loop_.schedule_after(seconds(decode_s), [this] { present_in_order(); });
}

void GBoosterRuntime::present_in_order() {
  // §VI-C: requests may complete out of order across devices; results are
  // displayed strictly by sequence number.
  while (true) {
    // Sequences shed by the governor or the service are deliberate drops,
    // not display gaps: advance past them without waiting out the timeout.
    shed_sequences_.erase(shed_sequences_.begin(),
                          shed_sequences_.lower_bound(next_display_sequence_));
    while (shed_sequences_.erase(next_display_sequence_) != 0) {
      ++next_display_sequence_;
    }
    const auto it = ready_.find(next_display_sequence_);
    if (it == ready_.end()) {
      // Liveness: if the expected result never arrives (its message was
      // abandoned by the transport), later completed frames must not wait
      // forever. Skip the hole once it is older than the gap timeout.
      if (!ready_.empty()) {
        const SimTime oldest = ready_.begin()->second.displayable_at;
        if (loop_.now() - oldest >= config_.display_gap_timeout) {
          const std::uint64_t gap_end = ready_.begin()->first;
          std::uint64_t dropped = gap_end - next_display_sequence_;
          // Shed sequences inside the gap were counted at shed time; they
          // are not transport losses.
          for (auto shed = shed_sequences_.begin();
               shed != shed_sequences_.end() && *shed < gap_end;) {
            --dropped;
            shed = shed_sequences_.erase(shed);
          }
          stats_.frames_dropped += dropped;
          // Release the dispatcher bookkeeping of the lost requests so their
          // phantom workload stops biasing Eq. 4.
          for (auto lost = in_flight_.begin();
               lost != in_flight_.end() && lost->first < gap_end;) {
            InFlight& stale = lost->second;
            if (!stale.local && !stale.shed) {
              dispatcher_.on_abandoned(stale.device_index, stale.workload);
              // A governed frame reclaimed before the pump dispatched it
              // never produced a state message: replicas must not wait for
              // its sequence.
              if (!stale.dispatched && governor_ != nullptr &&
                  device_nodes_.size() > 1) {
                state_apply_floor_ =
                    std::max(state_apply_floor_, lost->first + 1);
              }
            }
            erase_msg_entries(stale);
            lost = in_flight_.erase(lost);
          }
          next_display_sequence_ = gap_end;
          continue;
        }
        loop_.schedule_at(oldest + config_.display_gap_timeout,
                          [this] { present_in_order(); });
      }
      return;
    }
    if (it->second.displayable_at > loop_.now()) {
      loop_.schedule_at(it->second.displayable_at,
                        [this] { present_in_order(); });
      return;
    }
    ReadyFrame frame = std::move(it->second);
    ready_.erase(it);
    const std::uint64_t sequence = next_display_sequence_++;
    stats_.frames_displayed++;
    if (runtime::kTracingCompiledIn && tracer_ != nullptr) {
      // Present covers the in-order wait: from the moment the frame became
      // displayable until its predecessors let it reach the screen.
      tracer_->span(runtime::Stage::kPresent, endpoint_.id(), sequence,
                    frame.displayable_at, loop_.now());
    }
    if (display_) {
      display_(sequence, loop_.now() - frame.issued, frame.content);
    }
    if (governor_ != nullptr) {
      governor_->on_frame_displayed((loop_.now() - frame.issued).ms());
    }
    if (frame.quality > 0) {
      stats_.quality_sum += static_cast<std::uint64_t>(frame.quality);
      stats_.quality_samples++;
    }
  }
}

}  // namespace gb::core
