#include "core/dispatcher.h"

#include <algorithm>

#include "common/error.h"

namespace gb::core {

Dispatcher::Dispatcher(std::vector<ServiceDeviceInfo> devices,
                       DispatchPolicy policy)
    : policy_(policy) {
  check(!devices.empty(), "dispatcher needs at least one service device");
  for (ServiceDeviceInfo& info : devices) {
    check(info.capability_pps > 0.0, "device capability must be positive");
    devices_.push_back(Entry{std::move(info)});
  }
}

std::size_t Dispatcher::pick(double workload_pixels) {
  if (policy_ == DispatchPolicy::kRoundRobin) {
    return round_robin_next_++ % devices_.size();
  }
  if (policy_ == DispatchPolicy::kRandom) {
    lcg_state_ = lcg_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::size_t>((lcg_state_ >> 33) % devices_.size());
  }
  std::size_t best = 0;
  double best_cost = 0.0;
  for (std::size_t j = 0; j < devices_.size(); ++j) {
    const Entry& d = devices_[j];
    const double cost =
        (d.queued_workload + workload_pixels) / d.info.capability_pps +
        d.delay_estimate.seconds();
    if (j == 0 || cost < best_cost) {
      best = j;
      best_cost = cost;
    }
  }
  return best;
}

void Dispatcher::on_assigned(std::size_t index, double workload_pixels) {
  devices_[index].queued_workload += workload_pixels;
}

void Dispatcher::on_abandoned(std::size_t index, double workload_pixels) {
  Entry& d = devices_[index];
  d.queued_workload = std::max(0.0, d.queued_workload - workload_pixels);
}

void Dispatcher::on_completed(std::size_t index, double workload_pixels,
                              SimTime round_trip) {
  Entry& d = devices_[index];
  d.queued_workload = std::max(0.0, d.queued_workload - workload_pixels);
  // EWMA so a transient stall does not permanently poison the estimate. The
  // delay term excludes the service time itself: subtract the request's own
  // compute share, floored at a minimum network latency.
  const double service_s = workload_pixels / d.info.capability_pps;
  const double network_s = std::max(round_trip.seconds() - service_s, 0.0005);
  constexpr double kAlpha = 0.2;
  d.delay_estimate = seconds((1.0 - kAlpha) * d.delay_estimate.seconds() +
                             kAlpha * network_s);
}

}  // namespace gb::core
