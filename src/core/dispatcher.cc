#include "core/dispatcher.h"

#include <algorithm>

#include "common/error.h"

namespace gb::core {

Dispatcher::Dispatcher(std::vector<ServiceDeviceInfo> devices,
                       DispatchPolicy policy)
    : policy_(policy) {
  check(!devices.empty(), "dispatcher needs at least one service device");
  for (ServiceDeviceInfo& info : devices) {
    check(info.capability_pps > 0.0, "device capability must be positive");
    devices_.push_back(Entry{std::move(info)});
  }
}

std::size_t Dispatcher::pick(double workload_pixels) {
  check(healthy_count() > 0, "pick with no healthy service device");
  if (policy_ == DispatchPolicy::kRoundRobin) {
    // Advance past dead devices; healthy_count() > 0 bounds the scan.
    std::size_t index = round_robin_next_++ % devices_.size();
    while (devices_[index].dead) index = round_robin_next_++ % devices_.size();
    return index;
  }
  if (policy_ == DispatchPolicy::kRandom) {
    // Redraw until a healthy index comes up: conditioning on "healthy" must
    // preserve uniformity. Linearly probing from a dead index would hand the
    // dead device's probability mass to its clockwise neighbour.
    while (true) {
      lcg_state_ = lcg_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
      const std::size_t index =
          static_cast<std::size_t>((lcg_state_ >> 33) % devices_.size());
      if (!devices_[index].dead) return index;
    }
  }
  std::size_t best = devices_.size();
  double best_cost = 0.0;
  for (std::size_t j = 0; j < devices_.size(); ++j) {
    const Entry& d = devices_[j];
    if (d.dead) continue;  // excluded from Eq. 4's argmin
    const double cost =
        (d.queued_workload + workload_pixels) / d.info.capability_pps +
        d.delay_estimate.seconds();
    if (best == devices_.size() || cost < best_cost) {
      best = j;
      best_cost = cost;
    }
  }
  return best;
}

std::size_t Dispatcher::healthy_count() const {
  std::size_t count = 0;
  for (const Entry& d : devices_) {
    if (!d.dead) count++;
  }
  return count;
}

bool Dispatcher::record_failure(std::size_t index, int threshold) {
  Entry& d = devices_[index];
  if (d.dead) return false;
  d.consecutive_failures++;
  if (d.consecutive_failures < threshold) return false;
  d.dead = true;
  // Whatever the device had queued died with it; keeping the workload would
  // bias Eq. 4 against it for its whole recovery.
  d.queued_workload = 0.0;
  return true;
}

bool Dispatcher::record_success(std::size_t index) {
  Entry& d = devices_[index];
  d.consecutive_failures = 0;
  if (!d.dead) return false;
  d.dead = false;
  // The revived device starts from a clean slate: its queued work died with
  // it, and the pre-death delay estimate — inflated by the very round trips
  // that tripped the breaker — must not carry over. Eq. 4 would otherwise
  // rank the device last, it would never be assigned work, and with no
  // fresh round trips the EWMA could never decay: permanent starvation.
  d.queued_workload = 0.0;
  d.delay_estimate = kInitialDelayEstimate;
  return true;
}

std::size_t Dispatcher::add_device(ServiceDeviceInfo info) {
  check(info.capability_pps > 0.0, "device capability must be positive");
  devices_.push_back(Entry{std::move(info)});
  return devices_.size() - 1;
}

void Dispatcher::replace_device(std::size_t index, ServiceDeviceInfo info) {
  check(index < devices_.size(), "replace_device: index out of range");
  check(info.capability_pps > 0.0, "device capability must be positive");
  Entry& d = devices_[index];
  d.info = std::move(info);
  // Same clean slate as record_success: workload, delay estimate, and
  // breaker counters all described the departed device.
  d.queued_workload = 0.0;
  d.delay_estimate = kInitialDelayEstimate;
  d.dead = false;
  d.consecutive_failures = 0;
}

void Dispatcher::on_assigned(std::size_t index, double workload_pixels) {
  devices_[index].queued_workload += workload_pixels;
}

void Dispatcher::on_abandoned(std::size_t index, double workload_pixels) {
  Entry& d = devices_[index];
  d.queued_workload = std::max(0.0, d.queued_workload - workload_pixels);
}

void Dispatcher::on_completed(std::size_t index, double workload_pixels,
                              SimTime round_trip) {
  Entry& d = devices_[index];
  d.queued_workload = std::max(0.0, d.queued_workload - workload_pixels);
  // EWMA so a transient stall does not permanently poison the estimate. The
  // delay term excludes the service time itself: subtract the request's own
  // compute share, floored at a minimum network latency.
  const double service_s = workload_pixels / d.info.capability_pps;
  const double network_s = std::max(round_trip.seconds() - service_s, 0.0005);
  constexpr double kAlpha = 0.2;
  d.delay_estimate = seconds((1.0 - kAlpha) * d.delay_estimate.seconds() +
                             kAlpha * network_s);
}

}  // namespace gb::core
