// Energy-aware Bluetooth/WiFi interface switching (§V-B).
//
// Every observation interval (100 ms) the switcher feeds the measured
// traffic volume and the exogenous attributes into the ARMAX forecaster and
// asks: will demand exceed what Bluetooth can carry within the next 500 ms?
//
//  - If yes and the route is Bluetooth, it powers the WiFi radio on *now* —
//    the 100–500 ms wake latency is exactly why the decision must lead the
//    demand — and moves the default route once the radio is usable.
//  - If demand has stayed comfortably under the Bluetooth ceiling for a
//    hold-down period, it routes back to Bluetooth and suspends WiFi.
//
// Policies: kPredictive (the paper's mechanism), kAlwaysWifi (the Fig. 6b
// ablation with the optimization disabled), kReactive (switch only after
// demand already exceeded Bluetooth — demonstrates the wake-latency penalty).
#pragma once

#include <cstdint>
#include <vector>

#include "net/medium.h"
#include "net/radio.h"
#include "net/reliable.h"
#include "predict/path_capacity.h"
#include "predict/traffic_predictor.h"
#include "runtime/event_loop.h"
#include "runtime/trace.h"

namespace gb::core {

enum class SwitchPolicy {
  kPredictive,
  kAlwaysWifi,
  kReactive,
  // Concurrent multipath (DESIGN.md §13): both radios stay powered and every
  // endpoint stripes across both media, weighted each interval by per-path
  // predicted deliverable capacity (predict::PathCapacityPredictor). There is
  // no exclusive route to switch; a collapsing path sheds weight instead.
  kMultipath,
};

struct SwitcherConfig {
  SwitchPolicy policy = SwitchPolicy::kPredictive;
  SimTime observe_interval = ms(100);
  int forecast_horizon_intervals = 5;  // 500 ms
  // Fraction of the Bluetooth link rate treated as its usable ceiling
  // (protocol overhead + shared piconet airtime).
  double bt_usable_fraction = 0.65;
  // Consecutive calm intervals before falling back to Bluetooth.
  int calm_intervals_before_downgrade = 20;
  predict::TrafficPredictorConfig predictor;
  // kMultipath only: usable fraction of the WiFi line rate (protocol
  // overhead; the Bluetooth side reuses bt_usable_fraction) and the per-path
  // delivery-ratio forecaster configuration. `usable_bps` is derived from
  // each radio's bandwidth — any value set here is overwritten.
  double wifi_usable_fraction = 0.85;
  predict::PathCapacityConfig path_capacity;
  // Optional pipeline tracer: route changes appear as instants on the user
  // device's track. Must outlive the switcher.
  runtime::Tracer* tracer = nullptr;
};

struct SwitcherStats {
  std::uint64_t upgrades_to_wifi = 0;
  std::uint64_t downgrades_to_bt = 0;
  // Intervals whose actual demand exceeded Bluetooth while WiFi was not yet
  // usable — the §V-B false-negative cost (latency spikes / frame jitter).
  std::uint64_t uncovered_demand_intervals = 0;
  // kMultipath: both accrue every interval (both radios carry traffic).
  double seconds_on_wifi = 0.0;
  double seconds_on_bt = 0.0;
  // kMultipath: intervals in which a path's predicted weight collapsed to
  // its floor (the scheduler effectively drained to the survivor).
  std::uint64_t wifi_floor_intervals = 0;
  std::uint64_t bt_floor_intervals = 0;
};

class InterfaceSwitcher {
 public:
  // `endpoints` — every endpoint whose default route follows the switch
  // decision (the user device plus the service devices replying to it; the
  // route is a property of the network configuration, and replies sent on a
  // medium whose user-side radio sleeps would be lost).
  InterfaceSwitcher(EventLoop& loop, SwitcherConfig config,
                    std::vector<net::ReliableEndpoint*> endpoints,
                    net::Medium& wifi_medium, net::RadioInterface& wifi_radio,
                    net::Medium& bt_medium, net::RadioInterface& bt_radio);

  // Called once per observation interval with the bytes sent during it and
  // the exogenous attribute sample (from the recorder's frame profiles and
  // the touch script).
  void observe_interval(const predict::TrafficSample& sample);

  [[nodiscard]] bool on_wifi() const noexcept { return on_wifi_; }
  [[nodiscard]] const SwitcherStats& stats() const noexcept { return stats_; }
  [[nodiscard]] double bt_capacity_bytes_per_interval() const;

  // kMultipath: predicted deliverable bytes/sec summed over the currently
  // usable paths — the aggregate the QoS governor sizes its bitrate ladder
  // against. Zero under the exclusive policies.
  [[nodiscard]] double predicted_aggregate_capacity_bps() const noexcept {
    return aggregate_capacity_bps_;
  }
  // kMultipath: the latest per-path weights, bind order {wifi, bt}.
  [[nodiscard]] double wifi_weight() const noexcept { return wifi_weight_; }
  [[nodiscard]] double bt_weight() const noexcept { return bt_weight_; }

 private:
  void observe_multipath(const predict::TrafficSample& sample);
  // Moves the default route without touching the upgrade/downgrade counters —
  // the constructor's *initial* routing is configuration, not a switch.
  void apply_route(bool use_wifi);
  void route_to_wifi();
  void route_to_bt();
  void trace_route(const char* name);

  EventLoop& loop_;
  SwitcherConfig config_;
  std::vector<net::ReliableEndpoint*> endpoints_;
  net::Medium& wifi_medium_;
  net::RadioInterface& wifi_radio_;
  net::Medium& bt_medium_;
  net::RadioInterface& bt_radio_;
  predict::TrafficPredictor predictor_;
  // kMultipath per-path forecasters (unused under exclusive policies).
  predict::PathCapacityPredictor wifi_capacity_;
  predict::PathCapacityPredictor bt_capacity_;
  double aggregate_capacity_bps_ = 0.0;
  double wifi_weight_ = 0.0;
  double bt_weight_ = 0.0;
  bool on_wifi_ = false;
  bool wifi_wake_requested_ = false;
  bool bt_wake_requested_ = false;
  int calm_streak_ = 0;
  SwitcherStats stats_;
};

}  // namespace gb::core
