// Message protocol between the GBooster user-device runtime and service
// devices. Three message kinds flow over the reliable transport:
//
//   kState  — state-mutating command records, multicast to every service
//             device to keep their OpenGL contexts consistent (§VI-B);
//   kRender — one rendering request (the frame-local records of one frame),
//             unicast to the device Eq. 4 selected;
//   kFrame  — the rendered, encoded frame flowing back with its sequence
//             number for in-order display (§VI-C).
//
// Command payloads are encoded against the shared LRU command cache and then
// LZ4-compressed (§V-A); the framing carries the pre-compression size.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "compress/command_cache.h"
#include "compress/lz4.h"
#include "wire/protocol.h"

namespace gb::core {

enum class MsgKind : std::uint8_t {
  kState = 1,
  kRender = 2,
  kFrame = 3,
  kPing = 4,      // heartbeat probe (unreliable path)
  kPong = 5,      // heartbeat reply (unreliable path)
  kSnapshot = 6,  // full GL-state checkpoint for replica resync / hot-join
  kJoin = 7,      // client -> service: app id for shared-store dedup
  kManifest = 8,  // service -> client: shared-store manifest reply
};

struct RenderRequestHeader {
  std::uint64_t sequence = 0;
  double workload_pixels = 0.0;  // Eq. 4's r, profiled on the user device
  // Request urgency when the service device schedules multiple users
  // (§VIII): lower = more time-critical. 0 for single-user sessions.
  int priority = 0;
  // True when this request repeats a frame whose first assignee died. The
  // receiving device already applied the frame's state records via the
  // multicast copy, so it must replay draws only (non-idempotent state
  // records — glGen*, glBufferData — must not run twice).
  bool redispatch = false;
  // Generation of the command cache this payload was encoded against. The
  // user device bumps it when a device's mirror may have diverged (messages
  // to it were abandoned); the device resets its mirror on a new epoch.
  std::uint32_t cache_epoch = 0;
  // Frames below this sequence will never arrive on this stream (rendered
  // locally during fallback, or their messages were abandoned): the device
  // fast-forwards its in-order apply cursor past them.
  std::uint64_t apply_floor = 0;
  // QoS governor overrides (DESIGN.md §11) for the service-side Turbo
  // encoder, applied before this frame is encoded. quality 0 and
  // skip_threshold -1 mean "keep the service default" (governor absent or
  // disabled).
  int quality = 0;
  int skip_threshold = -1;
  // Position of this message in the epoch's decode chain: incremented per
  // render message encoded against the device's mirror, reset to zero with
  // each new cache_epoch. The transport can deliver completed messages past
  // an abandoned hole (stream-floor skip), but those were encoded after the
  // hole inserted records the device never decoded — a revision gap tells
  // the device its mirror is stale and the message must be dropped undecoded
  // (the sender re-dispatches the affected frames under a fresh epoch).
  std::uint64_t mirror_rev = 0;
};

// In multi-device mode every frame produces exactly one message per service
// device: the full frame to the chosen renderer and a state-only message to
// the rest. Devices apply messages in frame-sequence order; `renderer_node`
// lets a device recognise (and skip applying) the state copy of a frame it
// is rendering in full.
struct StateHeader {
  std::uint64_t sequence = 0;
  std::uint32_t renderer_node = 0;
  // Generation of the shared state cache. Bumped (with a sender-side cache
  // reset) when a state message is abandoned toward any group member, so a
  // long-dead device that revives cannot decode against a diverged mirror.
  std::uint32_t cache_epoch = 0;
  // State sequences below this will never arrive (abandoned); receivers
  // fast-forward their in-order apply cursor past them.
  std::uint64_t apply_floor = 0;
};

// A full checkpoint of the client-side shadow replica, unicast over a
// device's reliable stream to bring its UserSession to the present: on a
// breaker revival after missed state multicasts, on hot-join of a device
// that was not part of the session at start, or as scoped recovery when only
// this device's state stream was abandoned. Installing it replaces the
// device's GL context, adopts both cache epochs, replaces the state-cache
// mirror with the shipped copy, and moves the in-order apply cursor to
// `sequence` — state messages below that sequence are dropped undecoded.
struct SnapshotHeader {
  // First sequence the replica should decode/apply after installing: the
  // recorder's next frame sequence at capture time.
  std::uint64_t sequence = 0;
  std::uint32_t state_cache_epoch = 0;
  std::uint32_t render_cache_epoch = 0;
};

struct FrameResultHeader {
  std::uint64_t sequence = 0;
  // Size the encoded frame would have at the nominal streaming resolution
  // (content may be rendered at reduced resolution; see sim fidelity modes).
  std::uint32_t nominal_bytes = 0;
  bool has_content = false;
  // Service-side admission control shed this request (DESIGN.md §11): the
  // GPU pass was cancelled or never queued. State records were still applied
  // (the replica stays consistent) and any content present must still be fed
  // to the decoder to keep the codec reference chain intact — but the frame
  // must not be displayed or counted as delivered.
  bool shed = false;
};

// --- builders -------------------------------------------------------------

// Encodes command records against `cache` and compresses; used for both
// kState and kRender payload bodies. A non-null `manifest` enables
// cross-session kSharedRef substitution (DESIGN.md §14); null reproduces
// today's stream byte-for-byte.
Bytes pack_commands(const wire::FrameCommands& frame,
                    compress::CommandCache& cache, compress::CacheStats& stats,
                    const compress::SharedManifest* manifest = nullptr);

// Inverse of pack_commands. `shared` supplies the receiver's shared-store
// lease for resolving kSharedRef records and publishing inline uploads.
std::optional<wire::FrameCommands> unpack_commands(
    std::span<const std::uint8_t> data, compress::CommandCache& cache,
    const compress::SharedDecodeContext& shared = {});

Bytes make_state_message(const StateHeader& header,
                         const wire::FrameCommands& state_records,
                         compress::CommandCache& cache,
                         compress::CacheStats& stats,
                         const compress::SharedManifest* manifest = nullptr);

Bytes make_render_message(const RenderRequestHeader& header,
                          const wire::FrameCommands& frame_records,
                          compress::CommandCache& cache,
                          compress::CacheStats& stats,
                          const compress::SharedManifest* manifest = nullptr);

// Join handshake for the shared-store tier: the client announces its app id
// on each service device's reliable stream; the device replies with the
// manifest of record payloads the app's store currently holds (taking a
// session-lifetime ref on each). Ordering on the reliable stream guarantees
// the service processes kJoin — binding the session's lease — before any
// later kState/kRender that might carry shared references.
Bytes make_join_message(std::uint64_t app_id);
Bytes make_manifest_message(
    std::span<const compress::ManifestEntry> entries);

Bytes make_frame_message(const FrameResultHeader& header,
                         std::span<const std::uint8_t> encoded_content);

// The snapshot body carries two opaque blobs (a serialized GlStateSnapshot
// and a serialized CommandCache mirror), LZ4-compressed together; the
// protocol layer does not interpret either.
Bytes make_snapshot_message(const SnapshotHeader& header,
                            std::span<const std::uint8_t> gl_state,
                            std::span<const std::uint8_t> cache_mirror);

// Heartbeat probe/reply for the health monitor; sent over the transport's
// unreliable datagram path so probes to a dead device accumulate no
// retransmission state. The nonce matches a pong to its ping.
Bytes make_ping_message(std::uint64_t nonce);
Bytes make_pong_message(std::uint64_t nonce);

// --- parsing ----------------------------------------------------------------

[[nodiscard]] MsgKind peek_kind(std::span<const std::uint8_t> message);

// Header-only parses (no command-cache decode): the receiver must learn the
// cache epoch *before* decoding the body against its mirror.
std::optional<RenderRequestHeader> peek_render_header(
    std::span<const std::uint8_t> message);
std::optional<StateHeader> peek_state_header(
    std::span<const std::uint8_t> message);

std::optional<std::uint64_t> parse_ping_message(
    std::span<const std::uint8_t> message);
std::optional<std::uint64_t> parse_pong_message(
    std::span<const std::uint8_t> message);

std::optional<std::uint64_t> parse_join_message(
    std::span<const std::uint8_t> message);
std::optional<std::vector<compress::ManifestEntry>> parse_manifest_message(
    std::span<const std::uint8_t> message);

struct ParsedState {
  StateHeader header;
  wire::FrameCommands records;
};
std::optional<ParsedState> parse_state_message(
    std::span<const std::uint8_t> message, compress::CommandCache& cache,
    const compress::SharedDecodeContext& shared = {});

struct ParsedRender {
  RenderRequestHeader header;
  wire::FrameCommands records;
};
std::optional<ParsedRender> parse_render_message(
    std::span<const std::uint8_t> message, compress::CommandCache& cache,
    const compress::SharedDecodeContext& shared = {});

struct ParsedFrame {
  FrameResultHeader header;
  Bytes encoded_content;  // empty when the result is size-only (analytic)
};
std::optional<ParsedFrame> parse_frame_message(
    std::span<const std::uint8_t> message);

struct ParsedSnapshot {
  SnapshotHeader header;
  Bytes gl_state;      // serialized gles::GlStateSnapshot
  Bytes cache_mirror;  // serialized compress::CommandCache
};
std::optional<ParsedSnapshot> parse_snapshot_message(
    std::span<const std::uint8_t> message);

}  // namespace gb::core
