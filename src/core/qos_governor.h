// Closed-loop overload control (DESIGN.md §11): an AIMD degradation
// controller that watches the offload pipeline's health — issue→display
// latency p95, pending-pipeline depth, transport backlog — over fixed sample
// windows and maps an integer degradation level onto codec knobs
// (TurboConfig quality / skip_threshold) and a frame-staleness shedding
// deadline.
//
// Control law: additive-ish increase / multiplicative-ish decrease with
// hysteresis and dwell. Overload in a window raises the level by
// `degrade_step` (react fast); recovery requires `recover_windows`
// consecutive calm windows *below* the low watermark before stepping down by
// one (recover slow, and never chatter across the single target threshold).
// A dwell time lower-bounds how long any level persists so the codec quality
// does not oscillate visibly.
//
// Everything is driven by the deterministic sim clock and plain arithmetic:
// decisions are bit-identical across worker-thread counts and runs.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/sim_clock.h"

namespace gb::core {

struct QosGovernorConfig {
  bool enabled = false;
  // Control window: latency samples are aggregated and one decision is made
  // per window.
  SimTime window = ms(500);
  // Latency target: the p95 issue→display latency the controller defends.
  double target_p95_ms = 100.0;
  // Hysteresis: recovery requires the p95 below low_fraction * target (not
  // merely below target), so the controller never oscillates around one
  // threshold.
  double low_fraction = 0.6;
  // Minimum time between level changes in either direction.
  SimTime min_dwell = seconds(1.0);
  // Consecutive calm windows required before stepping the level down.
  int recover_windows = 3;
  int max_level = 4;
  int degrade_step = 2;  // levels gained per overloaded window (fast down)
  int recover_step = 1;  // levels shed per recovery decision (slow up)
  // Auxiliary overload signals, each sufficient on its own: transport
  // backlog (queued airtime ahead of new traffic) and pending-pipeline
  // depth (frames in flight at window close).
  double backlog_overload_ms = 30.0;
  std::size_t depth_overload = 5;
  // Degradation ladder: level L encodes at
  //   quality        = max(min_quality, base_quality - L * quality_step)
  //   skip_threshold = min(max_skip_threshold, base + L * skip_step)
  int base_quality = 75;
  int min_quality = 25;
  int quality_step = 12;
  int base_skip_threshold = 2;
  int skip_step = 2;
  int max_skip_threshold = 10;
  // Deadline shedding: an undispatched frame older than this at dispatch
  // time is shed (the pipeline is behind; newer frames carry fresher input).
  // Zero derives 2 * target_p95 from the latency target.
  SimTime shed_deadline;
  // Proactive bitrate ladder (DESIGN.md §13): with a capacity forecast wired
  // in (the kMultipath switcher's predicted aggregate deliverable rate), the
  // governor also computes the lowest level whose estimated per-frame bytes
  // fit inside `capacity_headroom` of the forecast at `target_fps`, and
  // operates at the stricter (higher) of that and the AIMD level — shrinking
  // frames *before* the queue builds instead of after the p95 blows through
  // target. Zero target_fps disables the ladder (AIMD-only, the pre-§13
  // behaviour).
  double target_fps = 0.0;
  double capacity_headroom = 0.85;
  // Pending-window adaptation: level L caps the in-flight window at
  //   max(min_depth, configured_max - L * depth_step)
  // so a congested transport is not fed a full window of frames that can
  // only queue behind the repair traffic (their latency would be charged to
  // the display tail). min_depth keeps the pipeline pipelined: shrinking too
  // far starves the display stream during long loss bursts (nothing in
  // flight to complete when the burst lifts).
  int depth_step = 1;
  int min_depth = 4;
};

struct QosGovernorStats {
  std::uint64_t windows_evaluated = 0;
  std::uint64_t windows_overloaded = 0;
  std::uint64_t level_raises = 0;
  std::uint64_t level_drops = 0;
  int max_level_reached = 0;
  // Windows in which the proactive capacity ladder, not the reactive AIMD
  // loop, set the effective level (the forecast led the congestion).
  std::uint64_t proactive_limit_windows = 0;
  // Capacity-forecast recoveries that unwound capacity-attributed AIMD
  // raises immediately, bypassing the dwell/calm-window clock.
  std::uint64_t proactive_recoveries = 0;
};

class QosGovernor {
 public:
  explicit QosGovernor(QosGovernorConfig config);

  // Feeds one displayed frame's issue→display latency into the current
  // window.
  void on_frame_displayed(double latency_ms);

  // Feeds one encoded frame's wire size and the quality it was encoded at;
  // maintains the EWMA per-frame byte estimate (normalized to base_quality)
  // the bitrate ladder prices its rungs with.
  void on_frame_bytes(std::size_t bytes, int quality);

  // Feeds the latest predicted aggregate deliverable capacity (bytes/sec)
  // and recomputes the proactive level. No-op while target_fps is 0, the
  // byte estimate has no samples yet, or the forecast is non-positive.
  void on_capacity_forecast(double bytes_per_sec);

  // Estimated wire bytes of one frame encoded at degradation level `level`.
  [[nodiscard]] double frame_cost_estimate(int level) const;

  // Closes the current sample window and runs one control decision against
  // the auxiliary signals sampled now. Returns true when the degradation
  // level changed.
  bool evaluate(SimTime now, double backlog_ms, std::size_t pending_depth);

  // The reactive AIMD level alone; the knobs below apply effective_level().
  [[nodiscard]] int level() const noexcept { return level_; }
  // The stricter of the AIMD level and the proactive capacity-ladder level.
  [[nodiscard]] int effective_level() const noexcept {
    return level_ > proactive_level_ ? level_ : proactive_level_;
  }
  [[nodiscard]] int proactive_level() const noexcept {
    return proactive_level_;
  }
  [[nodiscard]] int quality() const noexcept;
  [[nodiscard]] int skip_threshold() const noexcept;
  [[nodiscard]] SimTime shed_deadline() const noexcept;
  // The pending-window cap at the current degradation level.
  [[nodiscard]] int depth_cap(int configured_max) const noexcept;
  // The p95 of the most recently closed window (0 when it had no samples).
  [[nodiscard]] double last_window_p95_ms() const noexcept {
    return last_p95_ms_;
  }
  [[nodiscard]] const QosGovernorStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const QosGovernorConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] int quality_for_level(int level) const noexcept;

  QosGovernorConfig config_;
  int level_ = 0;
  int proactive_level_ = 0;
  // AIMD raises taken while the proactive ladder was strictly leading the
  // reactive level — overload the capacity forecast itself predicted. When
  // the forecast recovers, these unwind immediately in on_capacity_forecast
  // (no dwell, no calm windows): holding quality degraded through the AIMD
  // hysteresis clock after the *cause* measurably cleared is the bug this
  // attribution exists to prevent. Latency-led raises (proactive not
  // leading at raise time) still recover only through the calm path.
  int capacity_raised_ = 0;
  // EWMA of per-frame wire bytes normalized to base_quality (0 = no samples).
  double base_frame_bytes_ = 0.0;
  int calm_windows_ = 0;
  SimTime last_change_;
  double last_p95_ms_ = 0.0;
  std::vector<double> window_latencies_;
  QosGovernorStats stats_;
};

}  // namespace gb::core
