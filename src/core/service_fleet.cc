#include "core/service_fleet.h"

#include "common/error.h"

namespace gb::core {

ServiceFleet::ServiceFleet(EventLoop& loop, ServiceFleetConfig config,
                           std::vector<FleetDeviceConfig> devices)
    : config_(std::move(config)), devices_(std::move(devices)) {
  check(!devices_.empty(), "fleet needs at least one service device");
  for (FleetDeviceConfig& dev : devices_) {
    check(dev.max_sessions > 0, "fleet device needs a positive session cap");
    // Fold the streamed-submission efficiency into the GPU model once, so
    // every capability readout below is the c^j the dispatcher should see.
    dev.profile.gpu.fillrate_pps *= dev.profile.gpu_request_efficiency;
    dev.profile.gpu_request_efficiency = 1.0;
    runtimes_.push_back(std::make_unique<ServiceRuntime>(
        loop, dev.node, dev.profile, config_.service));
  }
}

ServiceDeviceInfo ServiceFleet::device_info(std::size_t index) {
  check(index < runtimes_.size(), "fleet device index out of range");
  device::GpuModel& gpu = runtimes_[index]->gpu();
  gpu.sync();
  return ServiceDeviceInfo{devices_[index].node, devices_[index].profile.name,
                           gpu.effective_fillrate_pps()};
}

double ServiceFleet::placement_score(std::size_t index,
                                     double workload_pixels) {
  check(index < runtimes_.size(), "fleet device index out of range");
  ServiceRuntime& rt = *runtimes_[index];
  device::GpuModel& gpu = rt.gpu();
  gpu.sync();
  const double queue_s =
      (gpu.queued_workload_pixels() + workload_pixels) /
      gpu.effective_fillrate_pps();
  const double depth_s =
      config_.queue_depth_weight * static_cast<double>(gpu.queue_depth());
  // Tenancy must come from the placement registry, not the runtime's
  // connected-user count: a placed session is reserved here before its first
  // message ever reaches the device, and back-to-back placements would all
  // land on one device if reservations were invisible until traffic flowed.
  const double tenancy_s =
      config_.tenancy_weight * static_cast<double>(session_count(index)) /
      static_cast<double>(devices_[index].max_sessions);
  return queue_s + depth_s + tenancy_s;
}

std::optional<std::size_t> ServiceFleet::place_session(
    net::NodeId user, double workload_pixels) {
  check(!sessions_.contains(user), "user already has a session placed");
  std::size_t best = runtimes_.size();
  double best_score = 0.0;
  for (std::size_t j = 0; j < runtimes_.size(); ++j) {
    if (session_count(j) >=
        static_cast<std::size_t>(devices_[j].max_sessions)) {
      continue;
    }
    const double score = placement_score(j, workload_pixels);
    if (best == runtimes_.size() || score < best_score) {
      best = j;
      best_score = score;
    }
  }
  if (best == runtimes_.size()) {
    stats_.placements_rejected++;
    return std::nullopt;
  }
  sessions_[user] = best;
  stats_.sessions_placed++;
  return best;
}

void ServiceFleet::register_session(net::NodeId user, std::size_t index) {
  check(index < runtimes_.size(), "fleet device index out of range");
  sessions_[user] = index;
}

bool ServiceFleet::release_session(net::NodeId user) {
  const auto it = sessions_.find(user);
  if (it == sessions_.end()) return false;
  (void)runtimes_[it->second]->release_user(user);
  sessions_.erase(it);
  stats_.sessions_released++;
  return true;
}

std::optional<std::size_t> ServiceFleet::session_device(
    net::NodeId user) const {
  const auto it = sessions_.find(user);
  if (it == sessions_.end()) return std::nullopt;
  return it->second;
}

std::size_t ServiceFleet::session_count(std::size_t index) const {
  // The placement registry, not ServiceRuntime::user_count(): a placed
  // session is reserved here before its first message reaches the device,
  // and a migrated-away session stops counting against the source as soon
  // as it is re-registered even though the source runtime keeps serving the
  // drain tail for a few hundred milliseconds.
  std::size_t count = 0;
  for (const auto& [user, device] : sessions_) {
    if (device == index) count++;
  }
  return count;
}

std::optional<std::pair<std::size_t, std::size_t>> ServiceFleet::pick_rebalance(
    double workload_pixels, double trigger_ratio) {
  std::size_t hot = runtimes_.size();
  std::size_t cool = runtimes_.size();
  double hot_score = 0.0;
  double cool_score = 0.0;
  for (std::size_t j = 0; j < runtimes_.size(); ++j) {
    const double score = placement_score(j, workload_pixels);
    // Hot candidates must have a session to move; cool ones, room for it.
    if (session_count(j) > 0 && (hot == runtimes_.size() || score > hot_score)) {
      hot = j;
      hot_score = score;
    }
    if (session_count(j) < static_cast<std::size_t>(devices_[j].max_sessions) &&
        (cool == runtimes_.size() || score < cool_score)) {
      cool = j;
      cool_score = score;
    }
  }
  if (hot == runtimes_.size() || cool == runtimes_.size() || hot == cool) {
    return std::nullopt;
  }
  if (hot_score <= trigger_ratio * cool_score) return std::nullopt;
  stats_.rebalances_suggested++;
  return std::make_pair(hot, cool);
}

}  // namespace gb::core
