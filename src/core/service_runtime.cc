#include "core/service_runtime.h"

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "gles/state_snapshot.h"
#include "wire/decoder.h"

namespace gb::core {
namespace {

// Poisoned sessions hold raw state messages for re-decode after the snapshot
// lands. The backlog is bounded; on overflow it is dropped wholesale — the
// snapshot's floor re-bases past whatever was lost and later messages
// re-quarantine from there.
constexpr std::size_t kMaxQuarantinedState = 4096;

}  // namespace

ServiceRuntime::ServiceRuntime(EventLoop& loop, net::NodeId node,
                               device::DeviceProfile profile,
                               ServiceRuntimeConfig config)
    : loop_(loop),
      node_(node),
      profile_(std::move(profile)),
      config_(config),
      endpoint_(std::make_unique<net::ReliableEndpoint>(loop, node,
                                                        config.transport)),
      gpu_(std::make_unique<device::GpuModel>(loop, profile_.gpu)),
      pool_(config.worker_threads == 1
                ? nullptr
                : std::make_unique<runtime::ThreadPool>(
                      config.worker_threads)) {
  endpoint_->set_handler(
      [this](net::NodeId src, net::NodeId stream, Bytes message) {
        on_message(src, stream, std::move(message));
      });
}

ServiceRuntime::~ServiceRuntime() {
  for (auto& [user, session] : users_) {
    if (session.shared != nullptr) session.shared->close_lease(session.lease);
  }
}

bool ServiceRuntime::release_user(net::NodeId user) {
  const auto it = users_.find(user);
  if (it == users_.end()) return false;
  UserSession& session = it->second;
  if (session.shared != nullptr) session.shared->close_lease(session.lease);
  // Still-queued GPU work for this user: cancel what has not started; work
  // already running completes into a missing-user lookup and is discarded.
  for (const UserSession::PendingResult& pending : session.gpu_outstanding) {
    (void)gpu_->cancel(pending.ticket);
  }
  users_.erase(it);
  stats_.users_released++;
  return true;
}

void ServiceRuntime::handle_join(net::NodeId src, UserSession& session,
                                 std::span<const std::uint8_t> message) {
  const auto app_id = parse_join_message(message);
  check(app_id.has_value(), "malformed join message");
  std::vector<compress::ManifestEntry> entries;
  if (config_.shared_store != nullptr) {
    if (session.shared == nullptr) {
      session.shared = &config_.shared_store->store_for(*app_id);
      session.lease = session.shared->open_lease();
    }
    // manifest() refs every current entry under the session's lease, so the
    // grant can never dangle: leased entries are pinned until this runtime
    // closes the lease. A duplicate kJoin just re-snapshots (extra refs on
    // new entries are harmless; the reply supersedes the previous grant).
    entries = session.shared->manifest(session.lease);
  }
  stats_.joins_answered++;
  stats_.manifest_entries_granted += entries.size();
  endpoint_->send(src, make_manifest_message(entries));
}

ServiceRuntime::UserSession& ServiceRuntime::session_for(net::NodeId user) {
  const auto it = users_.find(user);
  if (it != users_.end()) return it->second;
  UserSession session;
  session.encoder = codec::TurboEncoder(config_.codec);
  if (pool_ != nullptr) session.encoder.set_thread_pool(pool_.get());
  if (config_.render_width > 0 && config_.render_height > 0) {
    session.backend = std::make_unique<gles::DirectBackend>(
        config_.render_width, config_.render_height, gles::PresentFn{});
    // Replay rasterization shares the runtime's worker pool: one pool serves
    // all sessions so concurrent users don't oversubscribe the host.
    if (pool_ != nullptr) {
      session.backend->context().set_thread_pool(pool_.get());
    }
    session.backend->context().set_raster_mode(
        config_.tile_binned_raster ? gles::RasterMode::kTileBinned
                                   : gles::RasterMode::kRowBand);
  }
  stats_.users_served++;
  return users_.emplace(user, std::move(session)).first->second;
}

void ServiceRuntime::on_message(net::NodeId src, net::NodeId stream,
                                Bytes message) {
  (void)stream;
  const MsgKind kind = peek_kind(message);
  if (kind == MsgKind::kPing) {
    const auto nonce = parse_ping_message(message);
    if (nonce.has_value()) {
      endpoint_->send_unreliable(src, make_pong_message(*nonce));
    }
    return;
  }
  if (kind == MsgKind::kPong) return;
  UserSession& session = session_for(src);
  if (kind == MsgKind::kJoin) {
    handle_join(src, session, message);
    return;
  }
  if (kind == MsgKind::kState) {
    handle_state_message(session, std::move(message));
  } else if (kind == MsgKind::kRender) {
    const auto header = peek_render_header(message);
    check(header.has_value(), "malformed render header");
    if (runtime::kTracingCompiledIn && config_.tracer != nullptr) {
      // The transport leg ends here; everything until the GPU completion —
      // in-order hold, GPU queue, render — is the remote-exec stage.
      config_.tracer->end(runtime::Stage::kUplink, header->sequence,
                          loop_.now());
      config_.tracer->begin(runtime::Stage::kRemoteExec, node_,
                            header->sequence, loop_.now());
    }
    if (header->cache_epoch != session.render_epoch) {
      session.render_cache = compress::CommandCache();
      session.render_epoch = header->cache_epoch;
      session.next_render_rev = 0;
      session.render_poisoned = false;
    }
    // Decode-chain contiguity: the transport delivers completed messages past
    // an abandoned hole, but those were encoded against mirror state the hole
    // carried. A revision gap means this (and everything after it, until the
    // sender's epoch reset arrives) must be dropped undecoded — the sender's
    // abandon handler re-dispatches the affected frames under a fresh epoch.
    if (header->mirror_rev != session.next_render_rev) {
      stats_.renders_dropped_stale++;
      if (runtime::kTracingCompiledIn && config_.tracer != nullptr) {
        config_.tracer->end(runtime::Stage::kRemoteExec, header->sequence,
                            loop_.now());
      }
      return;
    }
    session.next_render_rev++;
    std::optional<ParsedRender> parsed;
    if (!session.render_poisoned) {
      parsed = parse_render_message(message, session.render_cache,
                                    shared_ctx(session));
    }
    if (!parsed.has_value()) {
      // Undecodable body — most often a kSharedRef whose record was evicted
      // after the lease that granted its proof closed (stale manifest). The
      // mirror may be part-mutated, so poison the render chain for the rest
      // of this epoch and drop; the sender's next epoch reset (mirror
      // restart or migration re-join with a fresh manifest) recovers. This
      // degrades one session instead of crashing a device other tenants of
      // the fleet depend on.
      session.render_poisoned = true;
      stats_.renders_dropped_unresolvable++;
      if (runtime::kTracingCompiledIn && config_.tracer != nullptr) {
        config_.tracer->end(runtime::Stage::kRemoteExec, header->sequence,
                            loop_.now());
      }
      return;
    }
    fast_forward(session, header->apply_floor);
    const std::uint64_t seq = parsed->header.sequence;
    if (seq < session.next_apply_sequence) {
      // The cursor already passed this sequence. For a redispatched request
      // the state records were applied from the multicast copy (or skipped
      // under a floor), so the draws can still run; likewise for a request a
      // snapshot install jumped over — the restored state stands in for the
      // records it would have applied. A plain duplicate is dropped.
      const bool jumped = seq >= session.snapshot_jump_from &&
                          seq < session.snapshot_jump_to;
      if (parsed->header.redispatch || jumped) {
        execute_render(src, session, std::move(*parsed), /*draw_only=*/true);
      }
    } else {
      session.held[seq].render = std::move(parsed);
    }
  } else if (kind == MsgKind::kSnapshot) {
    auto parsed = parse_snapshot_message(message);
    check(parsed.has_value(), "malformed snapshot message");
    install_snapshot(src, session, std::move(*parsed));
  } else {
    throw Error("unexpected message kind at service device");
  }
  apply_in_order(src, session);
}

void ServiceRuntime::handle_state_message(UserSession& session,
                                          Bytes message) {
  const auto header = peek_state_header(message);
  check(header.has_value(), "malformed state header");
  const std::uint64_t seq = header->sequence;
  // An installed snapshot's mirror already reflects this prefix of the
  // stream; decoding a late copy would double-apply its cache insertions.
  if (seq < session.state_decode_floor) {
    stats_.state_messages_skipped_by_snapshot++;
    return;
  }
  // The epoch must be learned before the body is decoded: a decode against
  // a mirror the sender has already restarted would corrupt silently. A new
  // epoch also re-bases the decode timeline here — quarantined bytes from
  // the old epoch can never decode again.
  if (header->cache_epoch != session.state_epoch) {
    session.state_cache = compress::CommandCache();
    session.state_epoch = header->cache_epoch;
    session.state_poisoned = false;
    session.quarantined_state.clear();
    session.expected_state_seq = seq;
  }
  // Contiguity guard: within an epoch the sender multicasts state for every
  // frame in sequence order, so a gap means messages toward this replica
  // were abandoned while the rest of the group applied them — the mirror
  // can no longer decode what follows.
  if (!session.state_poisoned && seq != session.expected_state_seq) {
    session.state_poisoned = true;
    stats_.state_decode_poisonings++;
  }
  if (!session.state_poisoned) {
    auto parsed = parse_state_message(message, session.state_cache,
                                      shared_ctx(session));
    if (parsed.has_value()) {
      session.expected_state_seq = seq + 1;
      fast_forward(session, header->apply_floor);
      if (seq >= session.next_apply_sequence) {
        PendingApply& pending = session.held[seq];
        // The renderer's own state copy only keeps the cache mirror warm;
        // the slot must wait for the full render message.
        pending.expect_render = parsed->header.renderer_node == node_;
        pending.state = std::move(parsed);
      }
      return;
    }
    // The body failed to decode even though the timeline was contiguous:
    // the mirror diverged some other way. Same recovery path.
    session.state_poisoned = true;
    stats_.state_decode_poisonings++;
  }
  if (session.quarantined_state.size() >= kMaxQuarantinedState) {
    session.quarantined_state.clear();
  }
  session.quarantined_state[seq] = std::move(message);
  stats_.state_messages_quarantined++;
}

void ServiceRuntime::install_snapshot(net::NodeId user, UserSession& session,
                                      ParsedSnapshot snapshot) {
  const std::uint64_t to = snapshot.header.sequence;
  if (to < session.next_apply_sequence) {
    // The replica already advanced past the capture point (e.g. the ARQ
    // healed the stream before the snapshot's unicast leg arrived).
    stats_.snapshots_ignored_stale++;
    return;
  }
  if (session.backend != nullptr) {
    gles::install_gl_state(
        gles::GlStateSnapshot::deserialize(snapshot.gl_state),
        session.backend->context());
  }
  session.state_cache =
      compress::CommandCache::deserialize(snapshot.cache_mirror);
  session.state_epoch = snapshot.header.state_cache_epoch;
  if (snapshot.header.render_cache_epoch != session.render_epoch) {
    session.render_cache = compress::CommandCache();
    session.render_epoch = snapshot.header.render_cache_epoch;
    session.next_render_rev = 0;
  }
  // Held renders the cursor jump passes over still produce frames: their
  // draws run against the restored state (approximate for requests that
  // were in flight across the resync, but the presenter gets its result).
  // State-only slots are superseded by the snapshot itself.
  std::vector<ParsedRender> passed_renders;
  for (auto it = session.held.begin();
       it != session.held.end() && it->first < to;) {
    if (it->second.render.has_value()) {
      passed_renders.push_back(std::move(*it->second.render));
    }
    it = session.held.erase(it);
  }
  session.snapshot_jump_from = session.next_apply_sequence;
  session.snapshot_jump_to = to;
  session.next_apply_sequence = to;
  session.state_decode_floor = to;
  session.expected_state_seq = to;
  session.state_poisoned = false;
  stats_.snapshots_installed++;
  for (ParsedRender& render : passed_renders) {
    execute_render(user, session, std::move(render), /*draw_only=*/true);
  }
  // Re-feed quarantined state messages in sequence order against the shipped
  // mirror; anything below the floor is covered by the snapshot already.
  auto quarantined = std::move(session.quarantined_state);
  session.quarantined_state.clear();
  for (auto& [seq, raw] : quarantined) {
    handle_state_message(session, std::move(raw));
  }
}

void ServiceRuntime::apply_in_order(net::NodeId user, UserSession& session) {
  while (true) {
    const auto it = session.held.find(session.next_apply_sequence);
    if (it == session.held.end()) return;
    // A state-only slot whose frame this device renders stalls until the
    // render message lands (only a later floor overrides the wait).
    if (!it->second.render.has_value() && it->second.expect_render) return;
    PendingApply pending = std::move(it->second);
    session.held.erase(it);
    session.next_apply_sequence++;
    if (pending.render.has_value()) {
      // Draws-only iff this is a redispatch whose state records were already
      // applied from the multicast copy. When that copy is still unapplied
      // in this very slot, the render message (which carries the complete
      // state+draw sequence) supersedes it — full replay, copy ignored.
      const bool draw_only = pending.render->header.redispatch &&
                             !pending.state.has_value();
      execute_render(user, session, std::move(*pending.render), draw_only);
    } else {
      // Apply only the state records; the renderer handles the full frame.
      if (session.backend != nullptr) {
        try {
          wire::replay_frame(pending.state->records, *session.backend);
        } catch (const Error& e) {
          throw Error("state apply seq " +
                      std::to_string(session.next_apply_sequence - 1) +
                      " on node " + std::to_string(node_) + ": " + e.what());
        }
      }
      stats_.state_messages_applied++;
    }
  }
}

void ServiceRuntime::fast_forward(UserSession& session, std::uint64_t floor) {
  while (session.next_apply_sequence < floor) {
    const auto it = session.held.find(session.next_apply_sequence);
    session.next_apply_sequence++;
    stats_.sequences_fast_forwarded++;
    if (it == session.held.end()) continue;
    PendingApply pending = std::move(it->second);
    session.held.erase(it);
    if (session.backend == nullptr) continue;
    // Keep the replica as consistent as the surviving records allow: apply
    // the state-mutating subset; the draws will never be displayed. Held
    // renders below a floor were redispatched elsewhere — their state
    // records still belong to the shared timeline.
    wire::FrameCommands state_only;
    const wire::FrameCommands* source = nullptr;
    if (pending.render.has_value()) {
      for (const wire::CommandRecord& record : pending.render->records.records) {
        if (wire::mutates_shared_state(record.op())) {
          state_only.records.push_back(record);
        }
      }
      source = &state_only;
    } else if (pending.state.has_value()) {
      source = &pending.state->records;
    }
    if (source == nullptr) continue;
    try {
      wire::replay_frame(*source, *session.backend);
    } catch (const Error&) {
      // After a recovery, a fresh message's floor can outrun ARQ-healed
      // older copies; stale below-floor records that no longer apply cleanly
      // cost replica fidelity, not liveness.
    }
  }
}

}  // namespace gb::core
