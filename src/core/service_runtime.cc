#include "core/service_runtime.h"

#include <algorithm>

#include "common/error.h"
#include "wire/decoder.h"

namespace gb::core {

ServiceRuntime::ServiceRuntime(EventLoop& loop, net::NodeId node,
                               device::DeviceProfile profile,
                               ServiceRuntimeConfig config)
    : loop_(loop),
      node_(node),
      profile_(std::move(profile)),
      config_(config),
      endpoint_(std::make_unique<net::ReliableEndpoint>(loop, node)),
      gpu_(std::make_unique<device::GpuModel>(loop, profile_.gpu)),
      pool_(config.worker_threads == 1
                ? nullptr
                : std::make_unique<runtime::ThreadPool>(
                      config.worker_threads)) {
  endpoint_->set_handler(
      [this](net::NodeId src, net::NodeId stream, Bytes message) {
        on_message(src, stream, std::move(message));
      });
}

ServiceRuntime::UserSession& ServiceRuntime::session_for(net::NodeId user) {
  const auto it = users_.find(user);
  if (it != users_.end()) return it->second;
  UserSession session;
  session.encoder = codec::TurboEncoder(config_.codec);
  if (pool_ != nullptr) session.encoder.set_thread_pool(pool_.get());
  if (config_.render_width > 0 && config_.render_height > 0) {
    session.backend = std::make_unique<gles::DirectBackend>(
        config_.render_width, config_.render_height, gles::PresentFn{});
    // Replay rasterization shares the runtime's worker pool: one pool serves
    // all sessions so concurrent users don't oversubscribe the host.
    if (pool_ != nullptr) {
      session.backend->context().set_thread_pool(pool_.get());
    }
  }
  stats_.users_served++;
  return users_.emplace(user, std::move(session)).first->second;
}

void ServiceRuntime::on_message(net::NodeId src, net::NodeId stream,
                                Bytes message) {
  (void)stream;
  UserSession& session = session_for(src);
  const MsgKind kind = peek_kind(message);
  if (kind == MsgKind::kState) {
    auto parsed = parse_state_message(message, session.state_cache);
    check(parsed.has_value(), "malformed state message");
    if (parsed->header.renderer_node == node_) {
      // This device renders the frame in full; the state copy was decoded
      // (keeping the cache mirror consistent) and is otherwise ignored —
      // its sequence slot is filled by the render message.
      return;
    }
    PendingApply pending;
    pending.is_render = false;
    const std::uint64_t seq = parsed->header.sequence;
    pending.state = std::move(parsed);
    session.held.emplace(seq, std::move(pending));
  } else if (kind == MsgKind::kRender) {
    auto parsed = parse_render_message(message, session.render_cache);
    check(parsed.has_value(), "malformed render message");
    PendingApply pending;
    pending.is_render = true;
    const std::uint64_t seq = parsed->header.sequence;
    pending.render = std::move(parsed);
    session.held.emplace(seq, std::move(pending));
  } else {
    throw Error("unexpected message kind at service device");
  }
  apply_in_order(src, session);
}

void ServiceRuntime::apply_in_order(net::NodeId user, UserSession& session) {
  while (true) {
    const auto it = session.held.find(session.next_apply_sequence);
    if (it == session.held.end()) return;
    PendingApply pending = std::move(it->second);
    session.held.erase(it);
    session.next_apply_sequence++;
    if (pending.is_render) {
      execute_render(user, session, std::move(*pending.render));
    } else {
      // Apply only the state records; the renderer handles the full frame.
      if (session.backend != nullptr) {
        try {
          wire::replay_frame(pending.state->records, *session.backend);
        } catch (const Error& e) {
          throw Error("state apply seq " +
                      std::to_string(session.next_apply_sequence - 1) +
                      " on node " + std::to_string(node_) + ": " + e.what());
        }
      }
      stats_.state_messages_applied++;
    }
  }
}

}  // namespace gb::core
