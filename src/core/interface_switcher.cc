#include "core/interface_switcher.h"

namespace gb::core {

InterfaceSwitcher::InterfaceSwitcher(
    EventLoop& loop, SwitcherConfig config,
    std::vector<net::ReliableEndpoint*> endpoints, net::Medium& wifi_medium,
    net::RadioInterface& wifi_radio, net::Medium& bt_medium,
    net::RadioInterface& bt_radio)
    : loop_(loop),
      config_(config),
      endpoints_(std::move(endpoints)),
      wifi_medium_(wifi_medium),
      wifi_radio_(wifi_radio),
      bt_medium_(bt_medium),
      bt_radio_(bt_radio),
      predictor_([&config] {
        predict::TrafficPredictorConfig p = config.predictor;
        p.horizon = config.forecast_horizon_intervals;
        return p;
      }()) {
  if (config_.policy == SwitchPolicy::kAlwaysWifi) {
    wifi_radio_.power_on();
    route_to_wifi();
    bt_radio_.power_off();
  } else {
    // Sessions start on the low-power interface; the predictor earns the
    // upgrades.
    bt_radio_.power_on();
    route_to_bt();
    wifi_radio_.power_off();
  }
}

double InterfaceSwitcher::bt_capacity_bytes_per_interval() const {
  return bt_radio_.config().bandwidth_bps / 8.0 * config_.bt_usable_fraction *
         config_.observe_interval.seconds();
}

void InterfaceSwitcher::route_to_wifi() {
  if (!on_wifi_) stats_.upgrades_to_wifi++;
  on_wifi_ = true;
  for (net::ReliableEndpoint* endpoint : endpoints_) {
    endpoint->set_route(&wifi_medium_);
  }
}

void InterfaceSwitcher::route_to_bt() {
  if (on_wifi_) stats_.downgrades_to_bt++;
  on_wifi_ = false;
  for (net::ReliableEndpoint* endpoint : endpoints_) {
    endpoint->set_route(&bt_medium_);
  }
}

void InterfaceSwitcher::observe_interval(
    const predict::TrafficSample& sample) {
  const double interval_s = config_.observe_interval.seconds();
  if (on_wifi_) {
    stats_.seconds_on_wifi += interval_s;
  } else {
    stats_.seconds_on_bt += interval_s;
  }

  const double bt_ceiling = bt_capacity_bytes_per_interval();
  if (!on_wifi_ && sample.traffic_bytes > bt_ceiling) {
    stats_.uncovered_demand_intervals++;
  }

  if (config_.policy == SwitchPolicy::kAlwaysWifi) return;

  predictor_.observe(sample);

  // Queue buildup on the Bluetooth link is a direct signal that offered
  // load already exceeds capacity — the measured traffic series alone
  // cannot show it because a saturated link caps what gets through.
  const bool bt_saturated =
      !on_wifi_ && bt_medium_.backlog() > config_.observe_interval;

  const bool demand_high =
      bt_saturated ||
      (config_.policy == SwitchPolicy::kReactive
           ? sample.traffic_bytes > bt_ceiling         // react after the fact
           : predictor_.predicts_exceed(bt_ceiling));  // §V-B: lead the demand

  if (demand_high) {
    calm_streak_ = 0;
    if (!wifi_wake_requested_ && !wifi_radio_.usable()) {
      wifi_radio_.power_on();
      wifi_wake_requested_ = true;
    }
    if (wifi_radio_.usable()) {
      wifi_wake_requested_ = false;
      if (!on_wifi_) route_to_wifi();
    }
    return;
  }

  // If a wake was requested and the radio has come up meanwhile, complete
  // the upgrade even on a calm tick — the demand may be arriving right now.
  if (wifi_wake_requested_ && wifi_radio_.usable()) {
    wifi_wake_requested_ = false;
    route_to_wifi();
    return;
  }

  if (on_wifi_) {
    if (++calm_streak_ >= config_.calm_intervals_before_downgrade) {
      calm_streak_ = 0;
      route_to_bt();
      wifi_radio_.power_off();
    }
  } else {
    calm_streak_ = 0;
  }
}

}  // namespace gb::core
