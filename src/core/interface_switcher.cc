#include "core/interface_switcher.h"

namespace gb::core {

InterfaceSwitcher::InterfaceSwitcher(
    EventLoop& loop, SwitcherConfig config,
    std::vector<net::ReliableEndpoint*> endpoints, net::Medium& wifi_medium,
    net::RadioInterface& wifi_radio, net::Medium& bt_medium,
    net::RadioInterface& bt_radio)
    : loop_(loop),
      config_(config),
      endpoints_(std::move(endpoints)),
      wifi_medium_(wifi_medium),
      wifi_radio_(wifi_radio),
      bt_medium_(bt_medium),
      bt_radio_(bt_radio),
      predictor_([&config] {
        predict::TrafficPredictorConfig p = config.predictor;
        p.horizon = config.forecast_horizon_intervals;
        return p;
      }()),
      wifi_capacity_([&config, &wifi_radio] {
        predict::PathCapacityConfig p = config.path_capacity;
        p.usable_bps =
            wifi_radio.config().bandwidth_bps * config.wifi_usable_fraction;
        return p;
      }()),
      bt_capacity_([&config, &bt_radio] {
        predict::PathCapacityConfig p = config.path_capacity;
        p.usable_bps =
            bt_radio.config().bandwidth_bps * config.bt_usable_fraction;
        return p;
      }()) {
  // Initial routing is session configuration, not a demand-driven switch:
  // apply_route keeps the upgrade/downgrade counters at zero so experiment
  // stats count only the predictor's decisions.
  if (config_.policy == SwitchPolicy::kMultipath) {
    // Both radios stay powered for the whole session; the striping weights,
    // not an exclusive route, decide what each path carries. The route is
    // still set (to WiFi) so anything sent before the first weight update —
    // or after a future return to exclusive mode — has a defined path.
    wifi_radio_.power_on();
    bt_radio_.power_on();
    apply_route(/*use_wifi=*/true);
    wifi_weight_ = wifi_capacity_.predicted_capacity_bps();
    bt_weight_ = bt_capacity_.predicted_capacity_bps();
    aggregate_capacity_bps_ = wifi_weight_ + bt_weight_;
    for (net::ReliableEndpoint* endpoint : endpoints_) {
      endpoint->set_path_weights({wifi_weight_, bt_weight_});
    }
  } else if (config_.policy == SwitchPolicy::kAlwaysWifi) {
    wifi_radio_.power_on();
    apply_route(/*use_wifi=*/true);
    bt_radio_.power_off();
  } else {
    // Sessions start on the low-power interface; the predictor earns the
    // upgrades.
    bt_radio_.power_on();
    apply_route(/*use_wifi=*/false);
    wifi_radio_.power_off();
  }
}

double InterfaceSwitcher::bt_capacity_bytes_per_interval() const {
  return bt_radio_.config().bandwidth_bps / 8.0 * config_.bt_usable_fraction *
         config_.observe_interval.seconds();
}

void InterfaceSwitcher::apply_route(bool use_wifi) {
  on_wifi_ = use_wifi;
  net::Medium& medium = use_wifi ? wifi_medium_ : bt_medium_;
  for (net::ReliableEndpoint* endpoint : endpoints_) {
    endpoint->set_route(&medium);
  }
}

void InterfaceSwitcher::trace_route(const char* name) {
  if (runtime::kTracingCompiledIn && config_.tracer != nullptr) {
    const std::uint32_t track =
        endpoints_.empty() ? 0 : static_cast<std::uint32_t>(endpoints_[0]->id());
    config_.tracer->instant(name, track, loop_.now());
  }
}

void InterfaceSwitcher::route_to_wifi() {
  if (!on_wifi_) {
    stats_.upgrades_to_wifi++;
    trace_route("route_to_wifi");
  }
  apply_route(/*use_wifi=*/true);
  // Both radios awake would double-bill idle power for the whole WiFi phase;
  // Bluetooth contributes nothing while WiFi carries the traffic.
  bt_radio_.power_off();
}

void InterfaceSwitcher::route_to_bt() {
  if (on_wifi_) {
    stats_.downgrades_to_bt++;
    trace_route("route_to_bt");
  }
  apply_route(/*use_wifi=*/false);
}

void InterfaceSwitcher::observe_multipath(
    const predict::TrafficSample& sample) {
  const double interval_s = config_.observe_interval.seconds();
  stats_.seconds_on_wifi += interval_s;
  stats_.seconds_on_bt += interval_s;
  predictor_.observe(sample);  // demand series still feeds the QoS ladder

  wifi_capacity_.observe(wifi_medium_.stats().bytes_sent,
                         wifi_medium_.stats().bytes_lost);
  bt_capacity_.observe(bt_medium_.stats().bytes_sent,
                       bt_medium_.stats().bytes_lost);

  wifi_weight_ = wifi_capacity_.predicted_capacity_bps();
  bt_weight_ = bt_capacity_.predicted_capacity_bps();
  const double wifi_floor =
      config_.path_capacity.min_ratio * wifi_radio_.config().bandwidth_bps *
      config_.wifi_usable_fraction;
  const double bt_floor = config_.path_capacity.min_ratio *
                          bt_radio_.config().bandwidth_bps *
                          config_.bt_usable_fraction;
  if (wifi_weight_ <= wifi_floor * 1.0001) stats_.wifi_floor_intervals++;
  if (bt_weight_ <= bt_floor * 1.0001) stats_.bt_floor_intervals++;

  // The governor's headroom only counts paths that can carry traffic right
  // now; a waking or faulted radio's forecast is a promise, not capacity.
  aggregate_capacity_bps_ = (wifi_radio_.usable() ? wifi_weight_ : 0.0) +
                            (bt_radio_.usable() ? bt_weight_ : 0.0);

  for (net::ReliableEndpoint* endpoint : endpoints_) {
    endpoint->set_path_weights({wifi_weight_, bt_weight_});
  }
  const double capacity_per_interval = aggregate_capacity_bps_ * interval_s;
  if (sample.traffic_bytes > capacity_per_interval) {
    stats_.uncovered_demand_intervals++;
  }
}

void InterfaceSwitcher::observe_interval(
    const predict::TrafficSample& sample) {
  if (config_.policy == SwitchPolicy::kMultipath) {
    observe_multipath(sample);
    return;
  }
  const double interval_s = config_.observe_interval.seconds();
  if (on_wifi_) {
    stats_.seconds_on_wifi += interval_s;
  } else {
    stats_.seconds_on_bt += interval_s;
  }

  const double bt_ceiling = bt_capacity_bytes_per_interval();
  if (!on_wifi_ && sample.traffic_bytes > bt_ceiling) {
    stats_.uncovered_demand_intervals++;
  }

  if (config_.policy == SwitchPolicy::kAlwaysWifi) return;

  predictor_.observe(sample);

  // Queue buildup on the Bluetooth link is a direct signal that offered
  // load already exceeds capacity — the measured traffic series alone
  // cannot show it because a saturated link caps what gets through.
  const bool bt_saturated =
      !on_wifi_ && bt_medium_.backlog() > config_.observe_interval;

  const bool demand_high =
      bt_saturated ||
      (config_.policy == SwitchPolicy::kReactive
           ? sample.traffic_bytes > bt_ceiling         // react after the fact
           : predictor_.predicts_exceed(bt_ceiling));  // §V-B: lead the demand

  if (demand_high) {
    calm_streak_ = 0;
    if (bt_wake_requested_) {
      // Demand returned while Bluetooth was warming up for a downgrade:
      // cancel it, the session is staying on WiFi.
      bt_radio_.power_off();
      bt_wake_requested_ = false;
    }
    if (!wifi_wake_requested_ && !wifi_radio_.usable()) {
      wifi_radio_.power_on();
      wifi_wake_requested_ = true;
    }
    if (wifi_radio_.usable()) {
      wifi_wake_requested_ = false;
      if (!on_wifi_) route_to_wifi();
    }
    return;
  }

  // If a wake was requested and the radio has come up meanwhile, complete
  // the upgrade even on a calm tick — the demand may be arriving right now.
  if (wifi_wake_requested_ && wifi_radio_.usable()) {
    wifi_wake_requested_ = false;
    route_to_wifi();
    return;
  }

  if (on_wifi_) {
    if (calm_streak_ < config_.calm_intervals_before_downgrade) calm_streak_++;
    if (calm_streak_ >= config_.calm_intervals_before_downgrade) {
      // Bluetooth was suspended at the upgrade; it needs its own wake before
      // it can carry the route. Hold the streak at the threshold while it
      // warms so the downgrade completes on the first usable tick.
      if (!bt_radio_.usable()) {
        if (!bt_wake_requested_) {
          bt_radio_.power_on();
          bt_wake_requested_ = true;
        }
        return;
      }
      bt_wake_requested_ = false;
      calm_streak_ = 0;
      route_to_bt();
      wifi_radio_.power_off();
    }
  } else {
    calm_streak_ = 0;
  }
}

}  // namespace gb::core
