#include "codec/video_ref.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "codec/block_coding.h"
#include "common/error.h"

namespace gb::codec {
namespace {

// Extracts a macroblock whose origin may lie outside the image (motion
// compensation can reference clamped border pixels on any side).
Macroblock extract_clamped(const Image& img, int tx, int ty) {
  // extract_macroblock clamps only the high side; pre-clamp the low side.
  if (tx >= 0 && ty >= 0) return extract_macroblock(img, tx, ty);
  Macroblock mb;
  // Rare path (blocks at the top/left border with negative vectors): sample
  // pixel by pixel. Build a temporary 16x16 image and reuse the extractor.
  Image patch(16, 16);
  for (int y = 0; y < 16; ++y) {
    const int sy = std::clamp(ty + y, 0, img.height() - 1);
    for (int x = 0; x < 16; ++x) {
      const int sx = std::clamp(tx + x, 0, img.width() - 1);
      std::copy_n(img.pixel(sx, sy), 4, patch.pixel(x, y));
    }
  }
  return extract_macroblock(patch, 0, 0);
}

// Sum of absolute differences over the RGB channels of two 16x16 regions.
std::uint32_t block_sad(const Image& cur, int cx, int cy, const Image& ref,
                        int rx, int ry) {
  std::uint32_t sad = 0;
  for (int y = 0; y < 16; ++y) {
    const int sy = std::min(cy + y, cur.height() - 1);
    const int ty = std::clamp(ry + y, 0, ref.height() - 1);
    for (int x = 0; x < 16; ++x) {
      const int sx = std::min(cx + x, cur.width() - 1);
      const int tx = std::clamp(rx + x, 0, ref.width() - 1);
      const std::uint8_t* a = cur.pixel(sx, sy);
      const std::uint8_t* b = ref.pixel(tx, ty);
      for (int c = 0; c < 3; ++c) {
        sad += static_cast<std::uint32_t>(
            std::abs(static_cast<int>(a[c]) - static_cast<int>(b[c])));
      }
    }
  }
  return sad;
}

Macroblock subtract(const Macroblock& a, const Macroblock& b) {
  Macroblock r;
  for (std::size_t i = 0; i < a.y.size(); ++i) r.y[i] = a.y[i] - b.y[i];
  for (std::size_t i = 0; i < a.cb.size(); ++i) r.cb[i] = a.cb[i] - b.cb[i];
  for (std::size_t i = 0; i < a.cr.size(); ++i) r.cr[i] = a.cr[i] - b.cr[i];
  return r;
}

Macroblock add(const Macroblock& a, const Macroblock& b) {
  Macroblock r;
  for (std::size_t i = 0; i < a.y.size(); ++i) r.y[i] = a.y[i] + b.y[i];
  for (std::size_t i = 0; i < a.cb.size(); ++i) r.cb[i] = a.cb[i] + b.cb[i];
  for (std::size_t i = 0; i < a.cr.size(); ++i) r.cr[i] = a.cr[i] + b.cr[i];
  return r;
}

// Residual macroblocks are centred on 0 already (difference of level-shifted
// planes), so both codecs share code_block unchanged.
struct CodedMacroblock {
  std::int8_t mv_x = 0;
  std::int8_t mv_y = 0;
};

}  // namespace

ReferenceVideoEncoder::ReferenceVideoEncoder(VideoRefConfig config)
    : config_(config) {
  check(config_.search_range >= 0 && config_.search_range <= 127,
        "search range out of range");
}

void ReferenceVideoEncoder::reset() { reference_ = Image(); }

Bytes ReferenceVideoEncoder::encode(const Image& frame) {
  check(!frame.empty(), "cannot encode empty frame");
  const bool keyframe = reference_.width() != frame.width() ||
                        reference_.height() != frame.height();
  if (keyframe) reference_ = Image(frame.width(), frame.height());
  stats_ = VideoRefStats{};
  stats_.keyframe = keyframe;

  const int tiles_x = (frame.width() + 15) / 16;
  const int tiles_y = (frame.height() + 15) / 16;
  const int tile_count = tiles_x * tiles_y;

  std::vector<CodedMacroblock> mvs(static_cast<std::size_t>(tile_count));
  std::vector<CodedUnit> units;
  const auto luma_q = luma_quant(config_.quality);
  const auto chroma_q = chroma_quant(config_.quality);

  // Predict strictly from the previous reconstructed frame; reconstruction
  // goes into `next` so intra-frame macroblock order cannot cause encoder/
  // decoder drift.
  Image next = reference_;
  int dc_y = 0, dc_cb = 0, dc_cr = 0;
  for (int t = 0; t < tile_count; ++t) {
    const int tx = (t % tiles_x) * 16;
    const int ty = (t / tiles_x) * 16;
    const Macroblock cur = extract_macroblock(frame, tx, ty);
    Macroblock prediction;  // zero for intra
    if (!keyframe) {
      // Exhaustive full search — the deliberate CPU cost of this encoder.
      std::uint32_t best_sad = 0xffffffffu;
      int best_dx = 0, best_dy = 0;
      const int r = config_.search_range;
      for (int dy = -r; dy <= r; ++dy) {
        for (int dx = -r; dx <= r; ++dx) {
          const std::uint32_t sad =
              block_sad(frame, tx, ty, reference_, tx + dx, ty + dy);
          stats_.sad_evaluations++;
          if (sad < best_sad) {
            best_sad = sad;
            best_dx = dx;
            best_dy = dy;
          }
        }
      }
      mvs[static_cast<std::size_t>(t)] = {static_cast<std::int8_t>(best_dx),
                                          static_cast<std::int8_t>(best_dy)};
      prediction = extract_clamped(reference_, tx + best_dx, ty + best_dy);
    }
    const Macroblock residual = keyframe ? cur : subtract(cur, prediction);

    Macroblock recon_residual;
    for (int by = 0; by < 2; ++by) {
      for (int bx = 0; bx < 2; ++bx) {
        Block8x8 recon{};
        dc_y = code_block(y_subblock(residual.y, bx, by), luma_q, dc_y, units,
                          recon);
        set_y_subblock(recon_residual.y, bx, by, recon);
      }
    }
    {
      Block8x8 in{};
      std::copy(residual.cb.begin(), residual.cb.end(), in.begin());
      Block8x8 recon{};
      dc_cb = code_block(in, chroma_q, dc_cb, units, recon);
      std::copy(recon.begin(), recon.end(), recon_residual.cb.begin());
    }
    {
      Block8x8 in{};
      std::copy(residual.cr.begin(), residual.cr.end(), in.begin());
      Block8x8 recon{};
      dc_cr = code_block(in, chroma_q, dc_cr, units, recon);
      std::copy(recon.begin(), recon.end(), recon_residual.cr.begin());
    }
    const Macroblock recon_mb =
        keyframe ? recon_residual : add(prediction, recon_residual);
    store_macroblock(next, tx, ty, recon_mb);
  }
  reference_ = std::move(next);

  std::array<std::uint64_t, 256> freq{};
  for (const CodedUnit& u : units) freq[u.symbol]++;
  if (units.empty()) freq[kEobSymbol] = 1;

  ByteWriter out;
  out.u16(narrow<std::uint16_t>(frame.width()));
  out.u16(narrow<std::uint16_t>(frame.height()));
  out.u8(static_cast<std::uint8_t>(config_.quality));
  out.u8(keyframe ? 1 : 0);
  if (!keyframe) {
    for (const CodedMacroblock& mb : mvs) {
      out.u8(static_cast<std::uint8_t>(mb.mv_x));
      out.u8(static_cast<std::uint8_t>(mb.mv_y));
    }
  }
  const HuffmanEncoder huff(freq);
  huff.write_table(out);
  BitWriter bits;
  for (const CodedUnit& u : units) {
    huff.encode(bits, u.symbol);
    if (u.bit_count > 0) bits.put_bits(u.bits, u.bit_count);
  }
  out.blob(bits.finish());
  stats_.encoded_bytes = out.size();
  return out.take();
}

std::optional<Image> ReferenceVideoDecoder::decode(
    std::span<const std::uint8_t> data) {
  try {
    ByteReader in(data);
    const int width = in.u16();
    const int height = in.u16();
    const int quality = in.u8();
    const bool keyframe = in.u8() != 0;
    if (width == 0 || height == 0) return std::nullopt;
    if (keyframe || reference_.width() != width ||
        reference_.height() != height) {
      if (!keyframe) return std::nullopt;
      reference_ = Image(width, height);
    }
    const int tiles_x = (width + 15) / 16;
    const int tiles_y = (height + 15) / 16;
    const int tile_count = tiles_x * tiles_y;

    std::vector<CodedMacroblock> mvs(static_cast<std::size_t>(tile_count));
    if (!keyframe) {
      for (CodedMacroblock& mb : mvs) {
        mb.mv_x = static_cast<std::int8_t>(in.u8());
        mb.mv_y = static_cast<std::int8_t>(in.u8());
      }
    }
    auto huff = HuffmanDecoder::from_table(in);
    if (!huff) return std::nullopt;
    const auto payload = in.blob();
    BitReader bits(payload);

    const auto luma_q = luma_quant(quality);
    const auto chroma_q = chroma_quant(quality);
    Image next = reference_;
    int dc_y = 0, dc_cb = 0, dc_cr = 0;
    for (int t = 0; t < tile_count; ++t) {
      const int tx = (t % tiles_x) * 16;
      const int ty = (t / tiles_x) * 16;
      Macroblock residual;
      for (int by = 0; by < 2; ++by) {
        for (int bx = 0; bx < 2; ++bx) {
          Block8x8 recon{};
          dc_y = decode_block(bits, *huff, luma_q, dc_y, recon);
          set_y_subblock(residual.y, bx, by, recon);
        }
      }
      {
        Block8x8 recon{};
        dc_cb = decode_block(bits, *huff, chroma_q, dc_cb, recon);
        std::copy(recon.begin(), recon.end(), residual.cb.begin());
      }
      {
        Block8x8 recon{};
        dc_cr = decode_block(bits, *huff, chroma_q, dc_cr, recon);
        std::copy(recon.begin(), recon.end(), residual.cr.begin());
      }
      Macroblock recon_mb = residual;
      if (!keyframe) {
        const CodedMacroblock& mv = mvs[static_cast<std::size_t>(t)];
        const Macroblock prediction =
            extract_clamped(reference_, tx + mv.mv_x, ty + mv.mv_y);
        recon_mb = add(prediction, residual);
      }
      store_macroblock(next, tx, ty, recon_mb);
    }
    reference_ = std::move(next);
    return reference_;
  } catch (const Error&) {
    return std::nullopt;
  }
}

}  // namespace gb::codec
