// Shared JPEG-style transform-coding machinery used by both frame codecs:
// quality-scaled quantization tables, (run,size) symbol generation with
// in-loop reconstruction, canonical-Huffman entropy helpers, RGB<->YCbCr
// conversion, and 4:2:0 macroblock plane handling.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "codec/bitstream.h"
#include "codec/dct.h"
#include "codec/huffman.h"
#include "common/image.h"

namespace gb::codec {

// Quality-scaled (1..100) JPEG Annex-K quantization tables.
std::array<int, 64> luma_quant(int quality);
std::array<int, 64> chroma_quant(int quality);

// JPEG zigzag scan order: maps coefficient-stream position to raster index
// within an 8x8 block. Exposed for decoders that buffer (run,size) symbols
// and rebuild blocks outside decode_block (the parallel Turbo decoder).
const std::array<int, 64>& zigzag_order();

// A symbol plus optional raw magnitude bits, buffered so a per-frame Huffman
// table can be built before the bitstream is written.
struct CodedUnit {
  std::uint8_t symbol;
  std::uint32_t bits;
  std::uint8_t bit_count;
};

inline constexpr std::uint8_t kEobSymbol = 0x00;
inline constexpr std::uint8_t kZrlSymbol = 0xF0;

// Transforms, quantizes and run-length codes one 8x8 block. Appends symbols
// to `units`, writes the dequantized in-loop reconstruction to `recon`, and
// returns the quantized DC coefficient (the caller's next DC predictor).
int code_block(const Block8x8& spatial, const std::array<int, 64>& quant,
               int dc_predictor, std::vector<CodedUnit>& units,
               Block8x8& recon);

// Inverse of code_block over a bitstream; returns the new DC predictor.
int decode_block(BitReader& bits, const HuffmanDecoder& huff,
                 const std::array<int, 64>& quant, int dc_predictor,
                 Block8x8& recon);

// Planar 16x16 macroblock in 4:2:0, level-shifted by -128.
struct Macroblock {
  std::array<float, 256> y{};
  std::array<float, 64> cb{};
  std::array<float, 64> cr{};
};

// Extracts a macroblock at (tx, ty) with edge replication at image borders.
Macroblock extract_macroblock(const Image& img, int tx, int ty);

// Writes a reconstructed macroblock back into `img`, clipping at borders.
void store_macroblock(Image& img, int tx, int ty, const Macroblock& mb);

// Access to the four 8x8 luma sub-blocks of a 16x16 plane.
Block8x8 y_subblock(const std::array<float, 256>& plane, int bx, int by);
void set_y_subblock(std::array<float, 256>& plane, int bx, int by,
                    const Block8x8& block);

// Largest per-channel absolute RGB difference within a size x size tile.
int tile_max_delta(const Image& a, const Image& b, int tx, int ty, int size);

}  // namespace gb::codec
