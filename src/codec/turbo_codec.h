// "Turbo" frame codec (§V-A): instead of a full video encoder — too slow on
// the ARM CPUs of most service devices — GBooster ships incremental updates
// between consecutive frames, intra-coding only the tiles that changed with
// a JPEG-style transform coder.
//
// Pipeline per frame:
//   1. split into 16x16 tiles; diff against the *reconstructed* previous
//      frame (in-loop reference, so encoder and decoder never drift);
//   2. changed tiles are converted RGB -> YCbCr 4:2:0 and coded as 8x8
//      DCT blocks with quality-scaled quantization;
//   3. (run,size) symbols are entropy-coded with a per-frame canonical
//      Huffman table.
//
// The first frame (or reset) is a keyframe: every tile is coded.
//
// Format version 2 makes the tile the unit of parallelism: DC prediction
// resets at every tile boundary and the header records how many coded units
// each tile contributed, so (a) the encoder's transform/quantize pass runs
// tiles concurrently on a ThreadPool and concatenates per-tile unit buffers
// in tile order — the bitstream is byte-identical for any thread count — and
// (b) the decoder splits the serial Huffman symbol stream at tile boundaries
// and reconstructs tiles (dequantize, IDCT, color convert, store) in
// parallel. Entropy coding itself stays serial in both directions.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "codec/block_coding.h"
#include "common/bytes.h"
#include "common/image.h"
#include "runtime/thread_pool.h"

namespace gb::codec {

// Bitstream format version carried in the frame header; readers reject
// anything else. v2 = per-tile DC reset + per-tile unit counts.
inline constexpr std::uint8_t kTurboFormatVersion = 2;

struct TurboConfig {
  int quality = 75;      // 1..100, JPEG-style quality scaling
  int tile_size = 16;    // must be a multiple of 16 (4:2:0 macroblocks)
  // Tiles whose max per-channel delta vs. the reference is at or below this
  // threshold are skipped (0 = exact-change detection).
  int skip_threshold = 2;
  // Worker threads for the per-tile passes: 1 = serial (no pool), 0 = one
  // per hardware core. Output is bit-identical for every value.
  int threads = 1;
};

struct TurboFrameStats {
  bool keyframe = false;
  int tiles_total = 0;
  int tiles_coded = 0;
  std::size_t encoded_bytes = 0;
};

class TurboEncoder {
 public:
  explicit TurboEncoder(TurboConfig config = {});

  // Encodes `frame`; dimensions must stay constant across a session (the
  // encoder resets itself with a keyframe if they change). Implemented on
  // top of the per-tile API below, so it is byte-identical to the fused
  // tile-at-a-time path for any thread count.
  [[nodiscard]] Bytes encode(const Image& frame);

  // --- per-tile path (render-tile -> encode-tile fusion) --------------------
  // The tile grid matches the rasterizer's (16x16, row-major), so a producer
  // that finishes tiles out of order — e.g. the tile-binned rasterizer — can
  // hand each one straight to the encoder while its pixels are cache-hot,
  // with no full-frame barrier between rasterize and encode.
  //
  //   begin_frame(w, h);
  //   encode_tile(frame, t) for every tile t   (any order; distinct tiles
  //                                             may run concurrently)
  //   bytes = finish_frame(frame);             (serial entropy pass)
  //
  // encode_tile performs change detection against the reference frame and,
  // for changed tiles, the transform/quantize/run-length pass. It touches
  // only tile-owned slots and reads only the tile's own pixel rectangle, so
  // concurrent calls for distinct tiles are safe. finish_frame checks every
  // tile was submitted.
  void begin_frame(int width, int height);
  void encode_tile(const Image& frame, int tile_index);
  [[nodiscard]] Bytes finish_frame(const Image& frame);
  [[nodiscard]] int tile_count() const {
    return static_cast<int>(tile_units_.size());
  }

  // Forces the next frame to be a keyframe.
  void reset();

  // Mid-stream quality adjustment (QoS governor, DESIGN.md §11): applies
  // from the next encoded frame. No keyframe or decoder coordination is
  // needed — every frame's header carries its own quality, and the in-loop
  // reference tracks the *reconstructed* pixels on both sides.
  void set_quality(int quality);
  void set_skip_threshold(int threshold);
  [[nodiscard]] const TurboConfig& config() const { return config_; }

  // Borrows a shared pool (e.g. the service runtime's) instead of the one
  // owned per config_.threads. Pass nullptr to return to the owned pool.
  void set_thread_pool(runtime::ThreadPool* pool) { shared_pool_ = pool; }

  [[nodiscard]] const TurboFrameStats& last_stats() const { return stats_; }

 private:
  [[nodiscard]] runtime::ThreadPool* pool() const;

  TurboConfig config_;
  std::shared_ptr<runtime::ThreadPool> owned_pool_;  // null when serial
  runtime::ThreadPool* shared_pool_ = nullptr;
  Image reference_;  // in-loop reconstructed previous frame
  TurboFrameStats stats_;

  // In-flight frame state for the per-tile path (begin_frame .. finish_frame).
  bool frame_active_ = false;
  bool frame_keyframe_ = false;
  int frame_width_ = 0;
  int frame_height_ = 0;
  int tiles_x_ = 0;
  std::array<int, 64> luma_q_{};
  std::array<int, 64> chroma_q_{};
  // One slot per tile, each owned exclusively by its encode_tile call:
  // 0 = skipped, 1 = coded, 2 = not yet submitted.
  std::vector<std::uint8_t> tile_coded_;
  std::vector<std::vector<CodedUnit>> tile_units_;
};

class TurboDecoder {
 public:
  // `threads` as in TurboConfig::threads; decoded images are pixel-identical
  // for every value.
  explicit TurboDecoder(int threads = 1);

  // Decodes the next frame of the stream; returns std::nullopt on malformed
  // input. Frames must be presented in encode order.
  [[nodiscard]] std::optional<Image> decode(std::span<const std::uint8_t> data);

  void set_thread_pool(runtime::ThreadPool* pool) { shared_pool_ = pool; }

 private:
  [[nodiscard]] runtime::ThreadPool* pool() const;

  std::shared_ptr<runtime::ThreadPool> owned_pool_;  // null when serial
  runtime::ThreadPool* shared_pool_ = nullptr;
  Image reference_;
};

// Peak signal-to-noise ratio between same-sized images, in dB over the RGB
// channels (alpha ignored). Returns +inf for identical images.
double psnr(const Image& a, const Image& b);

}  // namespace gb::codec
