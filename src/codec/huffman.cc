#include "codec/huffman.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.h"

namespace gb::codec {
namespace {

constexpr int kMaxLength = 16;

struct Node {
  std::uint64_t weight;
  int index;           // <256: leaf symbol; otherwise internal
  int left = -1;
  int right = -1;
};

// Standard Huffman tree construction, then depth extraction, then length
// limiting by the simple "push overlong leaves up" rebalance.
std::array<std::uint8_t, 256> lengths_from_tree(
    std::span<const std::uint64_t> freq) {
  std::vector<Node> nodes;
  const auto cmp = [&nodes](int a, int b) {
    if (nodes[static_cast<std::size_t>(a)].weight !=
        nodes[static_cast<std::size_t>(b)].weight) {
      return nodes[static_cast<std::size_t>(a)].weight >
             nodes[static_cast<std::size_t>(b)].weight;
    }
    return a > b;  // deterministic tie-break
  };
  std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);
  for (int s = 0; s < 256; ++s) {
    if (freq[static_cast<std::size_t>(s)] > 0) {
      nodes.push_back(Node{freq[static_cast<std::size_t>(s)], s});
      heap.push(static_cast<int>(nodes.size()) - 1);
    }
  }
  std::array<std::uint8_t, 256> lengths{};
  if (nodes.empty()) return lengths;
  if (nodes.size() == 1) {
    lengths[static_cast<std::size_t>(nodes[0].index)] = 1;
    return lengths;
  }
  while (heap.size() > 1) {
    const int a = heap.top();
    heap.pop();
    const int b = heap.top();
    heap.pop();
    nodes.push_back(Node{nodes[static_cast<std::size_t>(a)].weight +
                             nodes[static_cast<std::size_t>(b)].weight,
                         256, a, b});
    heap.push(static_cast<int>(nodes.size()) - 1);
  }
  // Depth-first traversal to assign lengths.
  struct Frame {
    int node;
    int depth;
  };
  std::vector<Frame> stack{{heap.top(), 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(f.node)];
    if (node.index < 256) {
      lengths[static_cast<std::size_t>(node.index)] =
          static_cast<std::uint8_t>(std::max(1, f.depth));
      continue;
    }
    stack.push_back({node.left, f.depth + 1});
    stack.push_back({node.right, f.depth + 1});
  }
  return lengths;
}

}  // namespace

std::array<std::uint8_t, 256> build_code_lengths(
    std::span<const std::uint64_t> frequencies) {
  check(frequencies.size() == 256, "frequency table must cover the alphabet");
  auto lengths = lengths_from_tree(frequencies);

  // Length-limit to kMaxLength using Kraft-sum repair: shorten the deepest
  // pair by lengthening a shallower leaf until the sum is feasible.
  for (;;) {
    double kraft = 0.0;
    bool overlong = false;
    for (int s = 0; s < 256; ++s) {
      const int len = lengths[static_cast<std::size_t>(s)];
      if (len == 0) continue;
      if (len > kMaxLength) {
        lengths[static_cast<std::size_t>(s)] = kMaxLength;
        overlong = true;
      }
      kraft += std::pow(2.0, -std::min(len, kMaxLength));
    }
    if (!overlong && kraft <= 1.0 + 1e-12) break;
    if (kraft <= 1.0 + 1e-12) break;
    // Find the longest code < kMaxLength and extend it by one to pay for the
    // clamped codes (classic JPEG-style adjustment loop).
    int victim = -1;
    for (int s = 0; s < 256; ++s) {
      const int len = lengths[static_cast<std::size_t>(s)];
      if (len > 0 && len < kMaxLength &&
          (victim < 0 || len > lengths[static_cast<std::size_t>(victim)])) {
        victim = s;
      }
    }
    check(victim >= 0, "cannot length-limit Huffman code");
    lengths[static_cast<std::size_t>(victim)]++;
  }
  return lengths;
}

namespace {

// Assigns canonical codes given lengths: symbols sorted by (length, value).
std::array<HuffmanCode, 256> canonical_codes(
    const std::array<std::uint8_t, 256>& lengths) {
  std::array<HuffmanCode, 256> codes{};
  std::vector<int> order;
  for (int s = 0; s < 256; ++s) {
    if (lengths[static_cast<std::size_t>(s)] > 0) order.push_back(s);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int la = lengths[static_cast<std::size_t>(a)];
    const int lb = lengths[static_cast<std::size_t>(b)];
    return la != lb ? la < lb : a < b;
  });
  std::uint32_t code = 0;
  int prev_len = 0;
  for (const int s : order) {
    const int len = lengths[static_cast<std::size_t>(s)];
    code <<= (len - prev_len);
    codes[static_cast<std::size_t>(s)] =
        HuffmanCode{static_cast<std::uint16_t>(code),
                    static_cast<std::uint8_t>(len)};
    ++code;
    prev_len = len;
  }
  return codes;
}

}  // namespace

HuffmanEncoder::HuffmanEncoder(std::span<const std::uint64_t> frequencies) {
  codes_ = canonical_codes(build_code_lengths(frequencies));
}

void HuffmanEncoder::encode(BitWriter& out, std::uint8_t symbol) const {
  const HuffmanCode& c = codes_[symbol];
  check(c.length > 0, "encoding symbol absent from Huffman table");
  out.put_bits(c.bits, c.length);
}

void HuffmanEncoder::write_table(ByteWriter& out) const {
  // Lengths fit in 5 bits; pack two per byte (4 bits each would overflow at
  // 16, so use one byte per symbol — simple and still tiny next to pixels).
  for (const HuffmanCode& c : codes_) out.u8(c.length);
}

std::optional<HuffmanDecoder> HuffmanDecoder::from_table(ByteReader& in) {
  std::array<std::uint8_t, 256> lengths{};
  for (auto& len : lengths) {
    len = in.u8();
    if (len > kMaxLength) return std::nullopt;
  }
  HuffmanDecoder d;
  for (int s = 0; s < 256; ++s) {
    const int len = lengths[static_cast<std::size_t>(s)];
    if (len > 0) d.count_[static_cast<std::size_t>(len)]++;
  }
  // Canonical first-code per length.
  std::uint32_t code = 0;
  std::uint32_t offset = 0;
  for (int len = 1; len <= kMaxLength; ++len) {
    d.first_code_[static_cast<std::size_t>(len)] = code;
    d.symbol_offset_[static_cast<std::size_t>(len)] = offset;
    code = (code + d.count_[static_cast<std::size_t>(len)]) << 1;
    offset += d.count_[static_cast<std::size_t>(len)];
  }
  d.symbols_.resize(offset);
  std::array<std::uint32_t, 17> next{};
  for (int s = 0; s < 256; ++s) {
    const int len = lengths[static_cast<std::size_t>(s)];
    if (len == 0) continue;
    const std::uint32_t at = d.symbol_offset_[static_cast<std::size_t>(len)] +
                             next[static_cast<std::size_t>(len)]++;
    d.symbols_[at] = static_cast<std::uint8_t>(s);
  }
  return d;
}

std::uint8_t HuffmanDecoder::decode(BitReader& in) const {
  std::uint32_t code = 0;
  for (int len = 1; len <= kMaxLength; ++len) {
    code = (code << 1) | (in.get_bit() ? 1u : 0u);
    const std::uint32_t n = count_[static_cast<std::size_t>(len)];
    const std::uint32_t first = first_code_[static_cast<std::size_t>(len)];
    if (n != 0 && code >= first && code < first + n) {
      return symbols_[symbol_offset_[static_cast<std::size_t>(len)] +
                      (code - first)];
    }
  }
  throw Error("invalid Huffman code in bitstream");
}

}  // namespace gb::codec
