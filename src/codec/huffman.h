// Canonical Huffman coding over a byte alphabet, used for the (run,size)
// symbols of the frame codecs. Code lengths are limited to 16 bits and the
// table is serialized as a 256-entry length array so the decoder rebuilds
// the identical canonical code.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "codec/bitstream.h"

namespace gb::codec {

struct HuffmanCode {
  std::uint16_t bits = 0;
  std::uint8_t length = 0;  // 0 means the symbol does not occur
};

class HuffmanEncoder {
 public:
  // Builds a length-limited canonical code from symbol frequencies
  // (unused symbols get length 0).
  explicit HuffmanEncoder(std::span<const std::uint64_t> frequencies);

  void encode(BitWriter& out, std::uint8_t symbol) const;
  // Serializes the code-length table (one nibble-packed byte per 2 symbols).
  void write_table(ByteWriter& out) const;
  [[nodiscard]] const std::array<HuffmanCode, 256>& codes() const {
    return codes_;
  }

 private:
  std::array<HuffmanCode, 256> codes_{};
};

class HuffmanDecoder {
 public:
  // Rebuilds the canonical code from a serialized length table.
  static std::optional<HuffmanDecoder> from_table(ByteReader& in);

  [[nodiscard]] std::uint8_t decode(BitReader& in) const;

 private:
  HuffmanDecoder() = default;
  // first_code[len], first_symbol_index[len] for canonical decoding.
  std::array<std::uint32_t, 17> first_code_{};
  std::array<std::uint32_t, 17> count_{};
  std::array<std::uint32_t, 17> symbol_offset_{};
  std::vector<std::uint8_t> symbols_;  // sorted by (length, symbol)
};

// Builds canonical code lengths (<=16) from frequencies; exposed for tests.
std::array<std::uint8_t, 256> build_code_lengths(
    std::span<const std::uint64_t> frequencies);

}  // namespace gb::codec
