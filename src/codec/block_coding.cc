#include "codec/block_coding.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/simd.h"

namespace gb::codec {
namespace {

// Standard JPEG Annex K quantization tables.
constexpr std::array<int, 64> kLumaQuant = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

constexpr std::array<int, 64> kChromaQuant = {
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99, 47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99};

constexpr std::array<int, 64> kZigzag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

std::array<int, 64> scaled_quant(const std::array<int, 64>& base, int quality) {
  quality = std::clamp(quality, 1, 100);
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  std::array<int, 64> out{};
  for (int i = 0; i < 64; ++i) {
    out[static_cast<std::size_t>(i)] = std::clamp(
        (base[static_cast<std::size_t>(i)] * scale + 50) / 100, 1, 255);
  }
  return out;
}

int bit_size(int v) {
  int magnitude = std::abs(v);
  int size = 0;
  while (magnitude != 0) {
    magnitude >>= 1;
    ++size;
  }
  return size;
}

std::uint32_t magnitude_bits(int v, int size) {
  return v >= 0 ? static_cast<std::uint32_t>(v)
                : static_cast<std::uint32_t>(v + (1 << size) - 1);
}

int decode_magnitude(std::uint32_t bits, int size) {
  if (size == 0) return 0;
  const std::uint32_t half = 1u << (size - 1);
  return bits >= half ? static_cast<int>(bits)
                      : static_cast<int>(bits) - (1 << size) + 1;
}

struct Ycbcr {
  float y, cb, cr;
};

Ycbcr rgb_to_ycbcr(std::uint8_t r, std::uint8_t g, std::uint8_t b) {
  const float rf = static_cast<float>(r);
  const float gf = static_cast<float>(g);
  const float bf = static_cast<float>(b);
  const float y = 0.299f * rf + 0.587f * gf + 0.114f * bf;
  return {y, 128.0f + 0.564f * (bf - y), 128.0f + 0.713f * (rf - y)};
}

std::array<std::uint8_t, 3> ycbcr_to_rgb(float y, float cb, float cr) {
  const float r = y + 1.402f * (cr - 128.0f);
  const float g = y - 0.344136f * (cb - 128.0f) - 0.714136f * (cr - 128.0f);
  const float b = y + 1.772f * (cb - 128.0f);
  const auto clamp8 = [](float v) {
    return static_cast<std::uint8_t>(std::clamp(std::lround(v), 0l, 255l));
  };
  return {clamp8(r), clamp8(g), clamp8(b)};
}

}  // namespace

const std::array<int, 64>& zigzag_order() { return kZigzag; }

std::array<int, 64> luma_quant(int quality) {
  return scaled_quant(kLumaQuant, quality);
}

std::array<int, 64> chroma_quant(int quality) {
  return scaled_quant(kChromaQuant, quality);
}

int code_block(const Block8x8& spatial, const std::array<int, 64>& quant,
               int dc_predictor, std::vector<CodedUnit>& units,
               Block8x8& recon) {
  Block8x8 freq = spatial;
  forward_dct(freq);
  std::array<int, 64> q{};
  for (int i = 0; i < 64; ++i) {
    q[static_cast<std::size_t>(i)] = static_cast<int>(
        std::lround(freq[static_cast<std::size_t>(i)] /
                    static_cast<float>(quant[static_cast<std::size_t>(i)])));
  }
  const int dc = q[0];
  const int diff = dc - dc_predictor;
  const int dsize = bit_size(diff);
  units.push_back(CodedUnit{static_cast<std::uint8_t>(dsize),
                            magnitude_bits(diff, dsize),
                            static_cast<std::uint8_t>(dsize)});
  int run = 0;
  for (int i = 1; i < 64; ++i) {
    const int v =
        q[static_cast<std::size_t>(kZigzag[static_cast<std::size_t>(i)])];
    if (v == 0) {
      ++run;
      continue;
    }
    while (run >= 16) {
      units.push_back(CodedUnit{kZrlSymbol, 0, 0});
      run -= 16;
    }
    const int size = bit_size(v);
    units.push_back(
        CodedUnit{static_cast<std::uint8_t>((run << 4) | size),
                  magnitude_bits(v, size), static_cast<std::uint8_t>(size)});
    run = 0;
  }
  if (run > 0) units.push_back(CodedUnit{kEobSymbol, 0, 0});

  // Dequantize for the in-loop reconstruction: exact integer products per
  // lane, safe to vectorize without changing results.
  GB_SIMD_LOOP
  for (int i = 0; i < 64; ++i) {
    recon[static_cast<std::size_t>(i)] =
        static_cast<float>(q[static_cast<std::size_t>(i)] *
                           quant[static_cast<std::size_t>(i)]);
  }
  inverse_dct(recon);
  return dc;
}

int decode_block(BitReader& bits, const HuffmanDecoder& huff,
                 const std::array<int, 64>& quant, int dc_predictor,
                 Block8x8& recon) {
  std::array<int, 64> q{};
  const std::uint8_t dsize = huff.decode(bits);
  check(dsize <= 15, "bad DC size symbol");
  const int diff =
      decode_magnitude(dsize > 0 ? bits.get_bits(dsize) : 0, dsize);
  const int dc = dc_predictor + diff;
  q[0] = dc;
  int i = 1;
  while (i < 64) {
    const std::uint8_t symbol = huff.decode(bits);
    if (symbol == kEobSymbol) break;
    if (symbol == kZrlSymbol) {
      i += 16;
      continue;
    }
    const int run = symbol >> 4;
    const int size = symbol & 0x0f;
    check(size > 0, "bad AC symbol");
    i += run;
    check(i < 64, "AC coefficient index out of range");
    q[static_cast<std::size_t>(kZigzag[static_cast<std::size_t>(i)])] =
        decode_magnitude(bits.get_bits(size), size);
    ++i;
  }
  GB_SIMD_LOOP
  for (int k = 0; k < 64; ++k) {
    recon[static_cast<std::size_t>(k)] =
        static_cast<float>(q[static_cast<std::size_t>(k)] *
                           quant[static_cast<std::size_t>(k)]);
  }
  inverse_dct(recon);
  return dc;
}

Macroblock extract_macroblock(const Image& img, int tx, int ty) {
  Macroblock mb;
  std::array<Ycbcr, 256> full{};
  for (int y = 0; y < 16; ++y) {
    const int sy = std::min(ty + y, img.height() - 1);
    for (int x = 0; x < 16; ++x) {
      const int sx = std::min(tx + x, img.width() - 1);
      const std::uint8_t* p = img.pixel(sx, sy);
      full[static_cast<std::size_t>(y * 16 + x)] =
          rgb_to_ycbcr(p[0], p[1], p[2]);
    }
  }
  for (int i = 0; i < 256; ++i) {
    mb.y[static_cast<std::size_t>(i)] =
        full[static_cast<std::size_t>(i)].y - 128.0f;
  }
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      float cb = 0, cr = 0;
      for (int dy = 0; dy < 2; ++dy) {
        for (int dx = 0; dx < 2; ++dx) {
          const Ycbcr& s =
              full[static_cast<std::size_t>((y * 2 + dy) * 16 + x * 2 + dx)];
          cb += s.cb;
          cr += s.cr;
        }
      }
      mb.cb[static_cast<std::size_t>(y * 8 + x)] = cb * 0.25f - 128.0f;
      mb.cr[static_cast<std::size_t>(y * 8 + x)] = cr * 0.25f - 128.0f;
    }
  }
  return mb;
}

void store_macroblock(Image& img, int tx, int ty, const Macroblock& mb) {
  for (int y = 0; y < 16; ++y) {
    const int dy = ty + y;
    if (dy >= img.height()) break;
    for (int x = 0; x < 16; ++x) {
      const int dx = tx + x;
      if (dx >= img.width()) break;
      const float yy = mb.y[static_cast<std::size_t>(y * 16 + x)] + 128.0f;
      const float cb =
          mb.cb[static_cast<std::size_t>((y / 2) * 8 + x / 2)] + 128.0f;
      const float cr =
          mb.cr[static_cast<std::size_t>((y / 2) * 8 + x / 2)] + 128.0f;
      const auto rgb = ycbcr_to_rgb(yy, cb, cr);
      std::uint8_t* p = img.pixel(dx, dy);
      p[0] = rgb[0];
      p[1] = rgb[1];
      p[2] = rgb[2];
      p[3] = 255;
    }
  }
}

Block8x8 y_subblock(const std::array<float, 256>& plane, int bx, int by) {
  Block8x8 block{};
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      block[static_cast<std::size_t>(y * 8 + x)] =
          plane[static_cast<std::size_t>((by * 8 + y) * 16 + bx * 8 + x)];
    }
  }
  return block;
}

void set_y_subblock(std::array<float, 256>& plane, int bx, int by,
                    const Block8x8& block) {
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      plane[static_cast<std::size_t>((by * 8 + y) * 16 + bx * 8 + x)] =
          block[static_cast<std::size_t>(y * 8 + x)];
    }
  }
}

int tile_max_delta(const Image& a, const Image& b, int tx, int ty, int size) {
  // This runs on every tile of every frame, so it walks row pointers instead
  // of bounds-checked pixel() calls. The max reduction over |a - b| is exact
  // integer math: vectorizing it cannot change the result. Alpha lanes are
  // masked to zero so the comparison stays RGB-only, as before.
  int max_delta = 0;
  const int y_end = std::min(ty + size, a.height());
  const int x_end = std::min(tx + size, a.width());
  const int lanes = (x_end - tx) * 4;
  for (int y = ty; y < y_end; ++y) {
    const std::uint8_t* ra = a.row(y) + static_cast<std::size_t>(tx) * 4;
    const std::uint8_t* rb = b.row(y) + static_cast<std::size_t>(tx) * 4;
    GB_SIMD_PRAGMA(omp simd reduction(max : max_delta))
    for (int i = 0; i < lanes; ++i) {
      const int d = (i & 3) == 3
                        ? 0
                        : static_cast<int>(ra[i]) - static_cast<int>(rb[i]);
      max_delta = std::max(max_delta, d < 0 ? -d : d);
    }
  }
  return max_delta;
}

}  // namespace gb::codec
