// 8x8 forward/inverse DCT-II used by the JPEG-style intra coder.
#pragma once

#include <array>

namespace gb::codec {

using Block8x8 = std::array<float, 64>;

// In-place separable forward DCT (orthonormal scaling, matching the JPEG
// convention where the DC term is 8x the block mean after level shift).
void forward_dct(Block8x8& block);

// Inverse of forward_dct.
void inverse_dct(Block8x8& block);

}  // namespace gb::codec
