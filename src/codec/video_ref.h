// Reference video encoder standing in for x264 (§V-A).
//
// The paper rejects x264 because software H.264 encoding on the ARM CPUs of
// typical service devices runs at ~1 MegaPixel/s — far below the ~7 MP/s the
// application produces — while the Turbo tile codec reaches ~90 MP/s. This
// encoder reproduces that trade-off with the real algorithmic cost: full-
// search motion estimation over +/- `search_range` pixels per 16x16
// macroblock with SAD matching, followed by DCT residual coding. It
// compresses better than the Turbo codec (motion compensation beats
// tile-skipping on panning content) and is deliberately orders of magnitude
// slower — exactly the crossover §V-A describes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/bytes.h"
#include "common/image.h"

namespace gb::codec {

struct VideoRefConfig {
  int quality = 75;
  int search_range = 11;  // full search over (2r+1)^2 candidates per MB
};

struct VideoRefStats {
  bool keyframe = false;
  std::size_t encoded_bytes = 0;
  std::uint64_t sad_evaluations = 0;  // motion-search cost indicator
};

class ReferenceVideoEncoder {
 public:
  explicit ReferenceVideoEncoder(VideoRefConfig config = {});

  [[nodiscard]] Bytes encode(const Image& frame);
  void reset();
  [[nodiscard]] const VideoRefStats& last_stats() const { return stats_; }

 private:
  VideoRefConfig config_;
  Image reference_;  // in-loop reconstructed previous frame
  VideoRefStats stats_;
};

class ReferenceVideoDecoder {
 public:
  [[nodiscard]] std::optional<Image> decode(std::span<const std::uint8_t> data);

 private:
  Image reference_;
};

}  // namespace gb::codec
