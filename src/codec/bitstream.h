// Bit-granular writer/reader used by the entropy-coding stages of the frame
// codecs. Bits are packed MSB-first within bytes.
#pragma once

#include <cstdint>
#include <span>

#include "common/bytes.h"
#include "common/error.h"

namespace gb::codec {

class BitWriter {
 public:
  void put_bit(bool bit) {
    current_ = static_cast<std::uint8_t>((current_ << 1) | (bit ? 1 : 0));
    if (++filled_ == 8) {
      buf_.push_back(current_);
      current_ = 0;
      filled_ = 0;
    }
  }

  // Writes the low `count` bits of `value`, most significant first.
  void put_bits(std::uint32_t value, int count) {
    for (int i = count - 1; i >= 0; --i) put_bit(((value >> i) & 1) != 0);
  }

  // Pads the final byte with zero bits and returns the buffer.
  [[nodiscard]] Bytes finish() {
    while (filled_ != 0) put_bit(false);
    return std::move(buf_);
  }

  [[nodiscard]] std::size_t bit_count() const {
    return buf_.size() * 8 + filled_;
  }

 private:
  Bytes buf_;
  std::uint8_t current_ = 0;
  int filled_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  bool get_bit() {
    check(bit_pos_ < data_.size() * 8, "bit reader overrun");
    const std::size_t byte = bit_pos_ / 8;
    const int shift = 7 - static_cast<int>(bit_pos_ % 8);
    ++bit_pos_;
    return ((data_[byte] >> shift) & 1) != 0;
  }

  std::uint32_t get_bits(int count) {
    std::uint32_t v = 0;
    for (int i = 0; i < count; ++i) v = (v << 1) | (get_bit() ? 1u : 0u);
    return v;
  }

  [[nodiscard]] std::size_t bits_remaining() const {
    return data_.size() * 8 - bit_pos_;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t bit_pos_ = 0;
};

}  // namespace gb::codec
