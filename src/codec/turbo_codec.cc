#include "codec/turbo_codec.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "codec/block_coding.h"
#include "common/error.h"

namespace gb::codec {
namespace {

// Blocks per 16x16 macroblock: 4 luma, then Cb, then Cr.
constexpr int kBlocksPerTile = 6;
// A block codes at most a DC unit plus 63 AC units plus an EOB; anything
// claiming more units per tile than 6 such blocks is malformed.
constexpr std::uint64_t kMaxUnitsPerTile = kBlocksPerTile * 65;

std::shared_ptr<runtime::ThreadPool> make_pool(int threads) {
  if (threads == 1) return nullptr;  // serial: no pool, no worker threads
  return std::make_shared<runtime::ThreadPool>(threads);
}

// Chunk size that gives each thread a few chunks to balance uneven tiles.
std::int64_t tile_grain(std::int64_t n, const runtime::ThreadPool* pool) {
  const int threads = pool != nullptr ? pool->thread_count() : 1;
  return std::max<std::int64_t>(1, n / (4 * threads));
}

// Encodes one tile's six blocks with tile-local DC prediction (the v2
// format change that makes tiles independent).
void code_tile(const Image& frame, int tx, int ty,
               const std::array<int, 64>& luma_q,
               const std::array<int, 64>& chroma_q,
               std::vector<CodedUnit>& units) {
  const Macroblock mb = extract_macroblock(frame, tx, ty);
  Block8x8 recon{};  // unused: intra tiles need no in-loop reference
  int dc_y = 0;
  for (int by = 0; by < 2; ++by) {
    for (int bx = 0; bx < 2; ++bx) {
      dc_y = code_block(y_subblock(mb.y, bx, by), luma_q, dc_y, units, recon);
    }
  }
  {
    Block8x8 cb_in{};
    std::copy(mb.cb.begin(), mb.cb.end(), cb_in.begin());
    code_block(cb_in, chroma_q, /*dc_predictor=*/0, units, recon);
  }
  {
    Block8x8 cr_in{};
    std::copy(mb.cr.begin(), mb.cr.end(), cr_in.begin());
    code_block(cr_in, chroma_q, /*dc_predictor=*/0, units, recon);
  }
}

// One entropy-decoded coded unit: the (run,size) symbol plus its
// sign/magnitude-decoded coefficient value.
struct DecodedCoeff {
  std::uint8_t symbol = 0;
  int value = 0;
};

// Walks the block structure of a tile's unit sequence. Both the serial
// symbol scan (which must know how many magnitude bits follow each symbol)
// and the parallel reconstruction replay the same machine, so they agree on
// where blocks start and end.
struct TileWalk {
  int blocks_done = 0;
  bool in_block = false;
  int coeff = 0;  // next zigzag index within the current block

  // Classifies the next unit. Returns false on malformed structure.
  enum class Unit { kDc, kAc, kEob, kZrl };
  bool step(std::uint8_t symbol, Unit& kind) {
    if (!in_block) {
      if (symbol > 15) return false;  // DC size symbol
      kind = Unit::kDc;
      in_block = true;
      coeff = 1;
      return true;
    }
    if (symbol == kEobSymbol) {
      kind = Unit::kEob;
      finish_block();
      return true;
    }
    if (symbol == kZrlSymbol) {
      kind = Unit::kZrl;
      coeff += 16;
      if (coeff >= 64) finish_block();
      return true;
    }
    const int run = symbol >> 4;
    const int size = symbol & 0x0f;
    if (size == 0) return false;
    coeff += run;
    if (coeff >= 64) return false;
    kind = Unit::kAc;
    ++coeff;
    if (coeff == 64) finish_block();
    return true;
  }

  [[nodiscard]] bool tile_complete() const {
    return !in_block && blocks_done == kBlocksPerTile;
  }

 private:
  void finish_block() {
    in_block = false;
    ++blocks_done;
    coeff = 0;
  }
};

int decode_magnitude(std::uint32_t bits, int size) {
  if (size == 0) return 0;
  const std::uint32_t half = 1u << (size - 1);
  return bits >= half ? static_cast<int>(bits)
                      : static_cast<int>(bits) - (1 << size) + 1;
}

// Rebuilds one tile's pixels from its decoded units (the parallel half of
// the decoder: dequantize, IDCT, color convert, store).
void reconstruct_tile(Image& target, int tx, int ty,
                      std::span<const DecodedCoeff> units,
                      const std::array<int, 64>& luma_q,
                      const std::array<int, 64>& chroma_q) {
  Macroblock mb;
  TileWalk walk;
  std::size_t u = 0;
  int dc_y = 0;
  int block = 0;
  while (block < kBlocksPerTile) {
    std::array<int, 64> q{};
    const bool is_luma = block < 4;
    // DC: luma prediction chains across the tile's four Y blocks; chroma
    // blocks each start from 0.
    check(u < units.size(), "tile unit underrun");
    TileWalk::Unit kind;
    check(walk.step(units[u].symbol, kind) && kind == TileWalk::Unit::kDc,
          "bad tile block structure");
    if (is_luma) {
      dc_y += units[u].value;
      q[0] = dc_y;
    } else {
      q[0] = units[u].value;
    }
    ++u;
    int i = 1;
    while (walk.in_block) {
      check(u < units.size(), "tile unit underrun");
      const DecodedCoeff& unit = units[u];
      check(walk.step(unit.symbol, kind), "bad tile block structure");
      ++u;
      if (kind == TileWalk::Unit::kEob) break;
      if (kind == TileWalk::Unit::kZrl) {
        i += 16;
        continue;
      }
      i += unit.symbol >> 4;
      q[static_cast<std::size_t>(zigzag_order()[static_cast<std::size_t>(i)])] =
          unit.value;
      ++i;
    }
    const std::array<int, 64>& quant = is_luma ? luma_q : chroma_q;
    Block8x8 recon{};
    for (int k = 0; k < 64; ++k) {
      recon[static_cast<std::size_t>(k)] =
          static_cast<float>(q[static_cast<std::size_t>(k)] *
                             quant[static_cast<std::size_t>(k)]);
    }
    inverse_dct(recon);
    if (is_luma) {
      set_y_subblock(mb.y, block % 2, block / 2, recon);
    } else if (block == 4) {
      std::copy(recon.begin(), recon.end(), mb.cb.begin());
    } else {
      std::copy(recon.begin(), recon.end(), mb.cr.begin());
    }
    ++block;
  }
  store_macroblock(target, tx, ty, mb);
}

}  // namespace

TurboEncoder::TurboEncoder(TurboConfig config)
    : config_(config), owned_pool_(make_pool(config.threads)) {
  check(config_.tile_size == 16, "turbo codec supports 16x16 tiles");
}

runtime::ThreadPool* TurboEncoder::pool() const {
  return shared_pool_ != nullptr ? shared_pool_ : owned_pool_.get();
}

void TurboEncoder::reset() { reference_ = Image(); }

void TurboEncoder::set_quality(int quality) {
  config_.quality = std::clamp(quality, 1, 100);
}

void TurboEncoder::set_skip_threshold(int threshold) {
  config_.skip_threshold = std::max(threshold, 0);
}

void TurboEncoder::begin_frame(int width, int height) {
  check(width > 0 && height > 0, "cannot encode empty frame");
  check(!frame_active_, "begin_frame while a frame is already in flight");
  frame_active_ = true;
  frame_keyframe_ =
      reference_.width() != width || reference_.height() != height;
  frame_width_ = width;
  frame_height_ = height;
  tiles_x_ = (width + 15) / 16;
  const int tiles_y = (height + 15) / 16;
  const std::size_t tile_count =
      static_cast<std::size_t>(tiles_x_) * tiles_y;
  luma_q_ = luma_quant(config_.quality);
  chroma_q_ = chroma_quant(config_.quality);
  tile_coded_.assign(tile_count, 2);  // 2 = not yet submitted
  tile_units_.resize(tile_count);
  for (auto& units : tile_units_) units.clear();
}

void TurboEncoder::encode_tile(const Image& frame, int tile_index) {
  // Change detection and coding both read only this tile's pixel rectangle
  // (extract_macroblock's edge replication clamps within it), and write only
  // this tile's slots — concurrent calls for distinct tiles never touch
  // shared mutable state.
  const int tx = (tile_index % tiles_x_) * 16;
  const int ty = (tile_index / tiles_x_) * 16;
  if (!frame_keyframe_ &&
      tile_max_delta(frame, reference_, tx, ty, 16) <= config_.skip_threshold) {
    tile_coded_[static_cast<std::size_t>(tile_index)] = 0;
    return;
  }
  auto& units = tile_units_[static_cast<std::size_t>(tile_index)];
  units.reserve(64);
  code_tile(frame, tx, ty, luma_q_, chroma_q_, units);
  tile_coded_[static_cast<std::size_t>(tile_index)] = 1;
}

Bytes TurboEncoder::finish_frame(const Image& frame) {
  check(frame_active_, "finish_frame without begin_frame");
  check(frame.width() == frame_width_ && frame.height() == frame_height_,
        "frame dimensions changed between begin_frame and finish_frame");
  frame_active_ = false;
  const int tile_count = static_cast<int>(tile_coded_.size());

  std::vector<std::uint8_t> coded_bitmap(
      static_cast<std::size_t>((tile_count + 7) / 8), 0);
  std::vector<int> coded_tiles;
  for (int t = 0; t < tile_count; ++t) {
    check(tile_coded_[static_cast<std::size_t>(t)] != 2,
          "finish_frame with unsubmitted tiles");
    if (tile_coded_[static_cast<std::size_t>(t)] == 0) continue;
    coded_bitmap[static_cast<std::size_t>(t / 8)] |=
        static_cast<std::uint8_t>(1u << (t % 8));
    coded_tiles.push_back(t);
  }
  const int tiles_coded = static_cast<int>(coded_tiles.size());
  reference_ = frame;  // next frame's change detector baseline

  // Entropy pass: per-frame canonical Huffman table, serial — the symbol
  // stream is one dependent bit sequence. Tiles are concatenated in tile
  // order regardless of the order encode_tile ran, so the bitstream is
  // byte-identical for any submission schedule and thread count. A
  // fully-skipped frame (static scene) carries no table and no payload —
  // the common case the incremental design exists for.
  ByteWriter out;
  out.u8(kTurboFormatVersion);
  out.u16(narrow<std::uint16_t>(frame.width()));
  out.u16(narrow<std::uint16_t>(frame.height()));
  out.u8(static_cast<std::uint8_t>(config_.quality));
  out.u8(frame_keyframe_ ? 1 : 0);
  out.raw(coded_bitmap);
  out.u8(tiles_coded > 0 ? 1 : 0);
  if (tiles_coded > 0) {
    // Per-tile unit counts let the decoder split the symbol stream at tile
    // boundaries and reconstruct tiles in parallel.
    for (const int t : coded_tiles) {
      out.varint(tile_units_[static_cast<std::size_t>(t)].size());
    }
    std::array<std::uint64_t, 256> freq{};
    for (const int t : coded_tiles) {
      for (const CodedUnit& u : tile_units_[static_cast<std::size_t>(t)]) {
        freq[u.symbol]++;
      }
    }
    const HuffmanEncoder huff(freq);
    huff.write_table(out);
    BitWriter bits;
    for (const int t : coded_tiles) {
      for (const CodedUnit& u : tile_units_[static_cast<std::size_t>(t)]) {
        huff.encode(bits, u.symbol);
        if (u.bit_count > 0) bits.put_bits(u.bits, u.bit_count);
      }
    }
    out.blob(bits.finish());
  }

  stats_ = TurboFrameStats{frame_keyframe_, tile_count, tiles_coded,
                           out.size()};
  return out.take();
}

Bytes TurboEncoder::encode(const Image& frame) {
  check(!frame.empty(), "cannot encode empty frame");
  begin_frame(frame.width(), frame.height());
  // One parallel pass runs change detection and transform/quantize per tile
  // back to back while the tile is cache-resident (v1 of this function made
  // two full-frame sweeps with a barrier between them).
  const std::int64_t tile_count = static_cast<std::int64_t>(tile_units_.size());
  runtime::ThreadPool* workers = pool();
  const auto encode_tiles = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      encode_tile(frame, static_cast<int>(t));
    }
  };
  if (workers != nullptr) {
    workers->parallel_for(0, tile_count, tile_grain(tile_count, workers),
                          encode_tiles);
  } else {
    encode_tiles(0, tile_count);
  }
  return finish_frame(frame);
}

TurboDecoder::TurboDecoder(int threads) : owned_pool_(make_pool(threads)) {}

runtime::ThreadPool* TurboDecoder::pool() const {
  return shared_pool_ != nullptr ? shared_pool_ : owned_pool_.get();
}

std::optional<Image> TurboDecoder::decode(std::span<const std::uint8_t> data) {
  try {
    ByteReader in(data);
    if (in.u8() != kTurboFormatVersion) return std::nullopt;
    const int width = in.u16();
    const int height = in.u16();
    const int quality = in.u8();
    const bool keyframe = in.u8() != 0;
    if (width == 0 || height == 0) return std::nullopt;
    if (keyframe || reference_.width() != width ||
        reference_.height() != height) {
      if (!keyframe) return std::nullopt;  // lost sync: need a keyframe
      reference_ = Image(width, height);
    }
    const int tiles_x = (width + 15) / 16;
    const int tiles_y = (height + 15) / 16;
    const int tile_count = tiles_x * tiles_y;
    const auto bitmap = in.raw(static_cast<std::size_t>((tile_count + 7) / 8));
    if (in.u8() == 0) return reference_;  // nothing coded: frame unchanged

    std::vector<int> coded_tiles;
    for (int t = 0; t < tile_count; ++t) {
      if ((bitmap[static_cast<std::size_t>(t / 8)] & (1u << (t % 8))) != 0) {
        coded_tiles.push_back(t);
      }
    }
    std::vector<std::size_t> unit_count(coded_tiles.size());
    for (std::size_t i = 0; i < coded_tiles.size(); ++i) {
      const std::uint64_t n = in.varint();
      if (n > kMaxUnitsPerTile) return std::nullopt;
      unit_count[i] = static_cast<std::size_t>(n);
    }
    auto huff = HuffmanDecoder::from_table(in);
    if (!huff) return std::nullopt;
    const auto payload = in.blob();
    BitReader bits(payload);

    // Phase A (serial): entropy-decode the one dependent bit sequence into a
    // flat unit array, validating that each tile's units form exactly six
    // complete blocks. The per-symbol magnitude-bit length depends on block
    // position, so this walk is also the structural parser.
    std::vector<DecodedCoeff> units;
    std::size_t total_units = 0;
    for (const std::size_t c : unit_count) total_units += c;
    units.reserve(total_units);  // counts are pre-capped by kMaxUnitsPerTile
    std::vector<std::size_t> tile_offset(coded_tiles.size() + 1, 0);
    for (std::size_t i = 0; i < coded_tiles.size(); ++i) {
      TileWalk walk;
      for (std::size_t u = 0; u < unit_count[i]; ++u) {
        const std::uint8_t symbol = huff->decode(bits);
        TileWalk::Unit kind;
        if (!walk.step(symbol, kind)) return std::nullopt;
        int size = 0;
        if (kind == TileWalk::Unit::kDc) {
          size = symbol;
        } else if (kind == TileWalk::Unit::kAc) {
          size = symbol & 0x0f;
        }
        const int value =
            decode_magnitude(size > 0 ? bits.get_bits(size) : 0, size);
        units.push_back(DecodedCoeff{symbol, value});
      }
      if (!walk.tile_complete()) return std::nullopt;
      tile_offset[i + 1] = units.size();
    }

    // Phase B (parallel): per-tile dequantize + IDCT + color convert +
    // store. Tiles own disjoint pixel rectangles, so no write overlaps.
    const auto luma_q = luma_quant(quality);
    const auto chroma_q = chroma_quant(quality);
    const auto reconstruct = [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        const int t = coded_tiles[static_cast<std::size_t>(i)];
        const int tx = (t % tiles_x) * 16;
        const int ty = (t / tiles_x) * 16;
        const std::span<const DecodedCoeff> tile_span(
            units.data() + tile_offset[static_cast<std::size_t>(i)],
            tile_offset[static_cast<std::size_t>(i) + 1] -
                tile_offset[static_cast<std::size_t>(i)]);
        reconstruct_tile(reference_, tx, ty, tile_span, luma_q, chroma_q);
      }
    };
    runtime::ThreadPool* workers = pool();
    const std::int64_t n = static_cast<std::int64_t>(coded_tiles.size());
    if (workers != nullptr) {
      workers->parallel_for(0, n, tile_grain(n, workers), reconstruct);
    } else {
      reconstruct(0, n);
    }
    return reference_;
  } catch (const Error&) {
    return std::nullopt;
  }
}

double psnr(const Image& a, const Image& b) {
  check(a.width() == b.width() && a.height() == b.height(),
        "psnr requires equal dimensions");
  double sum_sq = 0.0;
  std::size_t samples = 0;
  for (int y = 0; y < a.height(); ++y) {
    const std::uint8_t* ra = a.row(y);
    const std::uint8_t* rb = b.row(y);
    for (int x = 0; x < a.width(); ++x) {
      for (int c = 0; c < 3; ++c) {
        const double d = static_cast<double>(ra[x * 4 + c]) -
                         static_cast<double>(rb[x * 4 + c]);
        sum_sq += d * d;
        ++samples;
      }
    }
  }
  if (sum_sq == 0.0) return std::numeric_limits<double>::infinity();
  const double mse = sum_sq / static_cast<double>(samples);
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace gb::codec
