#include "codec/turbo_codec.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "codec/block_coding.h"
#include "common/error.h"

namespace gb::codec {

TurboEncoder::TurboEncoder(TurboConfig config) : config_(config) {
  check(config_.tile_size == 16, "turbo codec supports 16x16 tiles");
}

void TurboEncoder::reset() { reference_ = Image(); }

Bytes TurboEncoder::encode(const Image& frame) {
  check(!frame.empty(), "cannot encode empty frame");
  const bool keyframe = reference_.width() != frame.width() ||
                        reference_.height() != frame.height();

  const int tiles_x = (frame.width() + 15) / 16;
  const int tiles_y = (frame.height() + 15) / 16;
  const int tile_count = tiles_x * tiles_y;

  // Pass 1: choose tiles and produce coded units. Change detection compares
  // raw source frames (tiles are coded intra, so the decoder's copy of a
  // skipped tile still approximates the unchanged source — no drift).
  std::vector<std::uint8_t> coded_bitmap(
      static_cast<std::size_t>((tile_count + 7) / 8), 0);
  std::vector<CodedUnit> units;
  const auto luma_q = luma_quant(config_.quality);
  const auto chroma_q = chroma_quant(config_.quality);

  int dc_y = 0, dc_cb = 0, dc_cr = 0;
  int tiles_coded = 0;
  for (int t = 0; t < tile_count; ++t) {
    const int tx = (t % tiles_x) * 16;
    const int ty = (t / tiles_x) * 16;
    if (!keyframe && tile_max_delta(frame, reference_, tx, ty, 16) <=
                         config_.skip_threshold) {
      continue;
    }
    coded_bitmap[static_cast<std::size_t>(t / 8)] |=
        static_cast<std::uint8_t>(1u << (t % 8));
    ++tiles_coded;

    const Macroblock mb = extract_macroblock(frame, tx, ty);
    Block8x8 recon{};  // unused: intra tiles need no in-loop reference
    for (int by = 0; by < 2; ++by) {
      for (int bx = 0; bx < 2; ++bx) {
        dc_y = code_block(y_subblock(mb.y, bx, by), luma_q, dc_y, units, recon);
      }
    }
    {
      Block8x8 cb_in{};
      std::copy(mb.cb.begin(), mb.cb.end(), cb_in.begin());
      dc_cb = code_block(cb_in, chroma_q, dc_cb, units, recon);
    }
    {
      Block8x8 cr_in{};
      std::copy(mb.cr.begin(), mb.cr.end(), cr_in.begin());
      dc_cr = code_block(cr_in, chroma_q, dc_cr, units, recon);
    }
  }
  reference_ = frame;  // next frame's change detector baseline

  // Pass 2: entropy-code against a per-frame canonical Huffman table. A
  // fully-skipped frame (static scene) carries no table and no payload —
  // the common case the incremental design exists for.
  ByteWriter out;
  out.u16(narrow<std::uint16_t>(frame.width()));
  out.u16(narrow<std::uint16_t>(frame.height()));
  out.u8(static_cast<std::uint8_t>(config_.quality));
  out.u8(keyframe ? 1 : 0);
  out.raw(coded_bitmap);
  out.u8(tiles_coded > 0 ? 1 : 0);
  if (tiles_coded > 0) {
    std::array<std::uint64_t, 256> freq{};
    for (const CodedUnit& u : units) freq[u.symbol]++;
    const HuffmanEncoder huff(freq);
    huff.write_table(out);
    BitWriter bits;
    for (const CodedUnit& u : units) {
      huff.encode(bits, u.symbol);
      if (u.bit_count > 0) bits.put_bits(u.bits, u.bit_count);
    }
    out.blob(bits.finish());
  }

  stats_ = TurboFrameStats{keyframe, tile_count, tiles_coded, out.size()};
  return out.take();
}

std::optional<Image> TurboDecoder::decode(std::span<const std::uint8_t> data) {
  try {
    ByteReader in(data);
    const int width = in.u16();
    const int height = in.u16();
    const int quality = in.u8();
    const bool keyframe = in.u8() != 0;
    if (width == 0 || height == 0) return std::nullopt;
    if (keyframe || reference_.width() != width ||
        reference_.height() != height) {
      if (!keyframe) return std::nullopt;  // lost sync: need a keyframe
      reference_ = Image(width, height);
    }
    const int tiles_x = (width + 15) / 16;
    const int tiles_y = (height + 15) / 16;
    const int tile_count = tiles_x * tiles_y;
    const auto bitmap = in.raw(static_cast<std::size_t>((tile_count + 7) / 8));
    if (in.u8() == 0) return reference_;  // nothing coded: frame unchanged
    auto huff = HuffmanDecoder::from_table(in);
    if (!huff) return std::nullopt;
    const auto payload = in.blob();
    BitReader bits(payload);

    const auto luma_q = luma_quant(quality);
    const auto chroma_q = chroma_quant(quality);
    int dc_y = 0, dc_cb = 0, dc_cr = 0;
    for (int t = 0; t < tile_count; ++t) {
      if ((bitmap[static_cast<std::size_t>(t / 8)] & (1u << (t % 8))) == 0) {
        continue;
      }
      const int tx = (t % tiles_x) * 16;
      const int ty = (t / tiles_x) * 16;
      Macroblock mb;
      for (int by = 0; by < 2; ++by) {
        for (int bx = 0; bx < 2; ++bx) {
          Block8x8 recon{};
          dc_y = decode_block(bits, *huff, luma_q, dc_y, recon);
          set_y_subblock(mb.y, bx, by, recon);
        }
      }
      {
        Block8x8 recon{};
        dc_cb = decode_block(bits, *huff, chroma_q, dc_cb, recon);
        std::copy(recon.begin(), recon.end(), mb.cb.begin());
      }
      {
        Block8x8 recon{};
        dc_cr = decode_block(bits, *huff, chroma_q, dc_cr, recon);
        std::copy(recon.begin(), recon.end(), mb.cr.begin());
      }
      store_macroblock(reference_, tx, ty, mb);
    }
    return reference_;
  } catch (const Error&) {
    return std::nullopt;
  }
}

double psnr(const Image& a, const Image& b) {
  check(a.width() == b.width() && a.height() == b.height(),
        "psnr requires equal dimensions");
  double sum_sq = 0.0;
  std::size_t samples = 0;
  for (int y = 0; y < a.height(); ++y) {
    const std::uint8_t* ra = a.row(y);
    const std::uint8_t* rb = b.row(y);
    for (int x = 0; x < a.width(); ++x) {
      for (int c = 0; c < 3; ++c) {
        const double d = static_cast<double>(ra[x * 4 + c]) -
                         static_cast<double>(rb[x * 4 + c]);
        sum_sq += d * d;
        ++samples;
      }
    }
  }
  if (sum_sq == 0.0) return std::numeric_limits<double>::infinity();
  const double mse = sum_sq / static_cast<double>(samples);
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace gb::codec
