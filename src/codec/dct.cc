#include "codec/dct.h"

#include <cmath>
#include <numbers>

#include "common/simd.h"

namespace gb::codec {
namespace {

// Precomputed cos((2x+1) u pi / 16) basis and normalization factors. The
// basis is kept in both [u][x] and transposed [x][u] layouts: the separable
// passes below accumulate all eight output lanes u at once (one lane per
// SIMD element), so the inner loop wants the u axis contiguous.
struct DctTables {
  std::array<std::array<float, 8>, 8> cosine{};    // [u][x]
  std::array<std::array<float, 8>, 8> cosine_t{};  // [x][u]
  std::array<float, 8> alpha{};

  DctTables() {
    for (int u = 0; u < 8; ++u) {
      alpha[static_cast<std::size_t>(u)] =
          u == 0 ? 1.0f / std::numbers::sqrt2_v<float> : 1.0f;
      for (int x = 0; x < 8; ++x) {
        const float c =
            std::cos((2.0f * static_cast<float>(x) + 1.0f) *
                     static_cast<float>(u) * std::numbers::pi_v<float> / 16.0f);
        cosine[static_cast<std::size_t>(u)][static_cast<std::size_t>(x)] = c;
        cosine_t[static_cast<std::size_t>(x)][static_cast<std::size_t>(u)] = c;
      }
    }
  }
};

const DctTables& tables() {
  static const DctTables t;
  return t;
}

}  // namespace

// Both transforms accumulate per output lane in ascending input order —
// exactly the order the scalar dot-product formulation used — so lanes are
// independent (safe for omp simd) and results stay bit-identical whether or
// not the loop is vectorized.

void forward_dct(Block8x8& block) {
  const DctTables& t = tables();
  Block8x8 tmp{};
  // Rows: tmp[y][u] = 0.5 * alpha[u] * sum_x block[y][x] * cos[u][x].
  for (int y = 0; y < 8; ++y) {
    const float* row = &block[static_cast<std::size_t>(y * 8)];
    std::array<float, 8> acc{};
    for (int x = 0; x < 8; ++x) {
      const float s = row[x];
      const std::array<float, 8>& basis =
          t.cosine_t[static_cast<std::size_t>(x)];
      GB_SIMD_LOOP
      for (int u = 0; u < 8; ++u) {
        acc[static_cast<std::size_t>(u)] +=
            s * basis[static_cast<std::size_t>(u)];
      }
    }
    GB_SIMD_LOOP
    for (int u = 0; u < 8; ++u) {
      tmp[static_cast<std::size_t>(y * 8 + u)] =
          acc[static_cast<std::size_t>(u)] * 0.5f *
          t.alpha[static_cast<std::size_t>(u)];
    }
  }
  // Columns: block[v][u] = 0.5 * alpha[v] * sum_y tmp[y][u] * cos[v][y].
  // Lanes run along u (contiguous within a row of tmp), outputs along v.
  for (int v = 0; v < 8; ++v) {
    std::array<float, 8> acc{};
    for (int y = 0; y < 8; ++y) {
      const float c =
          t.cosine[static_cast<std::size_t>(v)][static_cast<std::size_t>(y)];
      const float* row = &tmp[static_cast<std::size_t>(y * 8)];
      GB_SIMD_LOOP
      for (int u = 0; u < 8; ++u) {
        acc[static_cast<std::size_t>(u)] += row[u] * c;
      }
    }
    const float scale = 0.5f * t.alpha[static_cast<std::size_t>(v)];
    GB_SIMD_LOOP
    for (int u = 0; u < 8; ++u) {
      block[static_cast<std::size_t>(v * 8 + u)] =
          acc[static_cast<std::size_t>(u)] * scale;
    }
  }
}

void inverse_dct(Block8x8& block) {
  const DctTables& t = tables();
  Block8x8 tmp{};
  // Columns: tmp[y][u] = 0.5 * sum_v alpha[v] * block[v][u] * cos[v][y].
  for (int y = 0; y < 8; ++y) {
    std::array<float, 8> acc{};
    for (int v = 0; v < 8; ++v) {
      const float c =
          t.alpha[static_cast<std::size_t>(v)] *
          t.cosine[static_cast<std::size_t>(v)][static_cast<std::size_t>(y)];
      const float* row = &block[static_cast<std::size_t>(v * 8)];
      GB_SIMD_LOOP
      for (int u = 0; u < 8; ++u) {
        acc[static_cast<std::size_t>(u)] += row[u] * c;
      }
    }
    GB_SIMD_LOOP
    for (int u = 0; u < 8; ++u) {
      tmp[static_cast<std::size_t>(y * 8 + u)] =
          acc[static_cast<std::size_t>(u)] * 0.5f;
    }
  }
  // Rows: block[y][x] = 0.5 * sum_u alpha[u] * tmp[y][u] * cos[u][x].
  for (int y = 0; y < 8; ++y) {
    const float* row = &tmp[static_cast<std::size_t>(y * 8)];
    std::array<float, 8> acc{};
    for (int u = 0; u < 8; ++u) {
      const float s = row[u] * t.alpha[static_cast<std::size_t>(u)];
      const std::array<float, 8>& basis = t.cosine[static_cast<std::size_t>(u)];
      GB_SIMD_LOOP
      for (int x = 0; x < 8; ++x) {
        acc[static_cast<std::size_t>(x)] +=
            s * basis[static_cast<std::size_t>(x)];
      }
    }
    GB_SIMD_LOOP
    for (int x = 0; x < 8; ++x) {
      block[static_cast<std::size_t>(y * 8 + x)] =
          acc[static_cast<std::size_t>(x)] * 0.5f;
    }
  }
}

}  // namespace gb::codec
