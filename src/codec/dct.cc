#include "codec/dct.h"

#include <cmath>
#include <numbers>

namespace gb::codec {
namespace {

// Precomputed cos((2x+1) u pi / 16) basis and normalization factors.
struct DctTables {
  std::array<std::array<float, 8>, 8> cosine{};  // [u][x]
  std::array<float, 8> alpha{};

  DctTables() {
    for (int u = 0; u < 8; ++u) {
      alpha[static_cast<std::size_t>(u)] =
          u == 0 ? 1.0f / std::numbers::sqrt2_v<float> : 1.0f;
      for (int x = 0; x < 8; ++x) {
        cosine[static_cast<std::size_t>(u)][static_cast<std::size_t>(x)] =
            std::cos((2.0f * static_cast<float>(x) + 1.0f) *
                     static_cast<float>(u) * std::numbers::pi_v<float> / 16.0f);
      }
    }
  }
};

const DctTables& tables() {
  static const DctTables t;
  return t;
}

}  // namespace

void forward_dct(Block8x8& block) {
  const DctTables& t = tables();
  Block8x8 tmp{};
  // Rows.
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      float sum = 0.0f;
      for (int x = 0; x < 8; ++x) {
        sum += block[static_cast<std::size_t>(y * 8 + x)] *
               t.cosine[static_cast<std::size_t>(u)][static_cast<std::size_t>(x)];
      }
      tmp[static_cast<std::size_t>(y * 8 + u)] =
          sum * 0.5f * t.alpha[static_cast<std::size_t>(u)];
    }
  }
  // Columns.
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      float sum = 0.0f;
      for (int y = 0; y < 8; ++y) {
        sum += tmp[static_cast<std::size_t>(y * 8 + u)] *
               t.cosine[static_cast<std::size_t>(v)][static_cast<std::size_t>(y)];
      }
      block[static_cast<std::size_t>(v * 8 + u)] =
          sum * 0.5f * t.alpha[static_cast<std::size_t>(v)];
    }
  }
}

void inverse_dct(Block8x8& block) {
  const DctTables& t = tables();
  Block8x8 tmp{};
  // Columns.
  for (int u = 0; u < 8; ++u) {
    for (int y = 0; y < 8; ++y) {
      float sum = 0.0f;
      for (int v = 0; v < 8; ++v) {
        sum += t.alpha[static_cast<std::size_t>(v)] *
               block[static_cast<std::size_t>(v * 8 + u)] *
               t.cosine[static_cast<std::size_t>(v)][static_cast<std::size_t>(y)];
      }
      tmp[static_cast<std::size_t>(y * 8 + u)] = sum * 0.5f;
    }
  }
  // Rows.
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      float sum = 0.0f;
      for (int u = 0; u < 8; ++u) {
        sum += t.alpha[static_cast<std::size_t>(u)] *
               tmp[static_cast<std::size_t>(y * 8 + u)] *
               t.cosine[static_cast<std::size_t>(u)][static_cast<std::size_t>(x)];
      }
      block[static_cast<std::size_t>(y * 8 + x)] = sum * 0.5f;
    }
  }
}

}  // namespace gb::codec
