#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/error.h"

namespace gb::runtime {

// One parallel_for in flight: workers claim chunks from `next` until the
// range is exhausted. `pending` counts unfinished chunks; the caller waits
// on it so every side effect of `fn` happens-before parallel_for returns.
struct ThreadPool::Job {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t grain = 1;
  const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
  std::atomic<std::int64_t> next{0};     // index of the next unclaimed chunk
  std::int64_t chunk_count = 0;
  std::atomic<std::int64_t> pending{0};  // chunks not yet finished
  std::mutex* done_mutex = nullptr;      // the pool's mutex_/done_ pair
  std::condition_variable* done_cv = nullptr;
  std::mutex error_mutex;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  thread_count_ = std::max(threads, 1);
  // The calling thread participates in parallel_for, so n threads of
  // concurrency need n - 1 workers.
  for (int i = 1; i < thread_count_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_job(Job& job) {
  for (;;) {
    const std::int64_t chunk = job.next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.chunk_count) return;
    const std::int64_t lo = job.begin + chunk * job.grain;
    const std::int64_t hi = std::min(lo + job.grain, job.end);
    try {
      (*job.fn)(lo, hi);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
    }
    // Copy the notify targets before the decrement: once `pending` hits
    // zero the caller may return and release its job reference, so only
    // members read beforehand (or the shared_ptr-kept Job itself) are safe.
    std::mutex* done_mutex = job.done_mutex;
    std::condition_variable* done_cv = job.done_cv;
    if (job.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last chunk done. The mutex bracket orders this against the caller's
      // predicate check so the notify cannot slip between its check and its
      // wait (the classic lost-wakeup race).
      { const std::lock_guard<std::mutex> lock(*done_mutex); }
      done_cv->notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Sleep until there is a job with unclaimed chunks (a drained job stays
      // installed until the caller retires it; don't spin on it).
      wake_.wait(lock, [this] {
        return stopping_ ||
               (job_ != nullptr && job_->next.load(std::memory_order_relaxed) <
                                       job_->chunk_count);
      });
      if (stopping_) return;
      job = job_;  // keeps the job alive past the caller's retirement
    }
    run_job(*job);
  }
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<std::int64_t>(grain, 1);
  const std::int64_t chunk_count = (end - begin + grain - 1) / grain;
  if (workers_.empty() || chunk_count == 1) {
    // Deterministic serial fallback: chunks run inline in index order.
    for (std::int64_t lo = begin; lo < end; lo += grain) {
      fn(lo, std::min(lo + grain, end));
    }
    return;
  }

  const auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->fn = &fn;
  job->chunk_count = chunk_count;
  job->pending.store(chunk_count, std::memory_order_relaxed);
  job->done_mutex = &mutex_;
  job->done_cv = &done_;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    check(job_ == nullptr, "nested parallel_for on one ThreadPool");
    job_ = job;
  }
  wake_.notify_all();
  run_job(*job);  // the caller is one of the pool's threads
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&job] {
      return job->pending.load(std::memory_order_acquire) == 0;
    });
    job_ = nullptr;
  }
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace gb::runtime
