#include "runtime/trace.h"

#include <algorithm>
#include <cstdio>

namespace gb::runtime {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kSerialize:
      return "serialize";
    case Stage::kUplink:
      return "uplink";
    case Stage::kRemoteExec:
      return "remote_exec";
    case Stage::kTurboEncode:
      return "turbo_encode";
    case Stage::kDownlink:
      return "downlink";
    case Stage::kDecode:
      return "decode";
    case Stage::kPresent:
      return "present";
    case Stage::kLocalRender:
      return "local_render";
  }
  return "unknown";
}

#if defined(GB_DISABLE_TRACING)

void Tracer::span(Stage, std::uint32_t, std::uint64_t, SimTime, SimTime) {}
void Tracer::begin(Stage, std::uint32_t, std::uint64_t, SimTime) {}
void Tracer::end(Stage, std::uint64_t, SimTime) {}
void Tracer::instant(std::string, std::uint32_t, SimTime,
                     std::vector<std::pair<std::string, double>>) {}
void Tracer::set_track_name(std::uint32_t, std::string) {}

#else

void Tracer::span(Stage stage, std::uint32_t track, std::uint64_t sequence,
                  SimTime begin, SimTime end) {
  spans_.push_back(TraceSpan{stage, track, sequence, begin, end});
}

void Tracer::begin(Stage stage, std::uint32_t track, std::uint64_t sequence,
                   SimTime at) {
  open_[{stage, sequence}] = TraceSpan{stage, track, sequence, at, at};
}

void Tracer::end(Stage stage, std::uint64_t sequence, SimTime at) {
  const auto it = open_.find({stage, sequence});
  if (it == open_.end()) return;  // never begun (or already overwritten+ended)
  TraceSpan span = it->second;
  open_.erase(it);
  span.end = at;
  spans_.push_back(span);
}

void Tracer::instant(std::string name, std::uint32_t track, SimTime at,
                     std::vector<std::pair<std::string, double>> args) {
  instants_.push_back(
      TraceInstant{std::move(name), track, at, std::move(args)});
}

void Tracer::set_track_name(std::uint32_t track, std::string name) {
  track_names_[track] = std::move(name);
}

#endif  // GB_DISABLE_TRACING

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

// One pre-rendered trace event, sortable into per-track timestamp order.
struct RenderedEvent {
  std::uint32_t tid = 0;
  std::int64_t ts = 0;
  int order = 0;  // tie-break: keeps instants after the span opening at ts
  std::string json;
};

}  // namespace

void Tracer::write_chrome_json(std::ostream& out) const {
  std::vector<RenderedEvent> events;
  events.reserve(spans_.size() + instants_.size());
  for (const TraceSpan& span : spans_) {
    RenderedEvent event;
    event.tid = span.track;
    event.ts = span.begin.us();
    event.order = 0;
    std::string& json = event.json;
    json += R"({"ph":"X","pid":1,"tid":)";
    json += std::to_string(span.track);
    json += R"(,"name":")";
    json += stage_name(span.stage);
    json += R"(","cat":"pipeline","ts":)";
    json += std::to_string(span.begin.us());
    json += R"(,"dur":)";
    json += std::to_string(std::max<std::int64_t>(
        0, span.end.us() - span.begin.us()));
    json += R"(,"args":{"sequence":)";
    json += std::to_string(span.sequence);
    json += "}}";
    events.push_back(std::move(event));
  }
  for (const TraceInstant& instant : instants_) {
    RenderedEvent event;
    event.tid = instant.track;
    event.ts = instant.ts.us();
    event.order = 1;
    std::string& json = event.json;
    json += R"({"ph":"i","pid":1,"tid":)";
    json += std::to_string(instant.track);
    json += R"(,"name":")";
    append_escaped(json, instant.name);
    json += R"(","s":"t","ts":)";
    json += std::to_string(instant.ts.us());
    json += R"(,"args":{)";
    bool first = true;
    for (const auto& [key, value] : instant.args) {
      if (!first) json += ",";
      first = false;
      json += "\"";
      append_escaped(json, key);
      json += "\":";
      append_number(json, value);
    }
    json += "}}";
    events.push_back(std::move(event));
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const RenderedEvent& a, const RenderedEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.order < b.order;
                   });

  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [track, name] : track_names_) {
    if (!first) out << ",";
    first = false;
    std::string escaped;
    append_escaped(escaped, name);
    out << R"({"ph":"M","pid":1,"tid":)" << track
        << R"(,"name":"thread_name","args":{"name":")" << escaped << "\"}}";
  }
  for (const RenderedEvent& event : events) {
    if (!first) out << ",";
    first = false;
    out << event.json;
  }
  out << "]}";
}

}  // namespace gb::runtime
