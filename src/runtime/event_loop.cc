#include "runtime/event_loop.h"

#include <algorithm>

namespace gb {

EventLoop::EventId EventLoop::schedule_at(SimTime when, Handler handler) {
  const SimTime at = std::max(when, now_);
  const EventId id = next_id_++;
  queue_.push(Event{at, next_sequence_++, id, std::move(handler)});
  return id;
}

void EventLoop::cancel(EventId id) { cancelled_.push_back(id); }

bool EventLoop::step() {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; the handler must be moved out, so
    // copy the small fields first and pop before running (the handler may
    // schedule or cancel further events re-entrantly).
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    const auto cancelled_it =
        std::find(cancelled_.begin(), cancelled_.end(), event.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    now_ = event.when;
    event.handler();
    return true;
  }
  return false;
}

void EventLoop::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    if (!step()) break;
  }
  now_ = std::max(now_, deadline);
}

std::size_t EventLoop::pending_events() const noexcept {
  return queue_.size() - std::min(queue_.size(), cancelled_.size());
}

}  // namespace gb
