// Low-overhead pipeline tracing (DESIGN.md §9).
//
// A Tracer collects per-frame stage spans on the simulated clock — each
// tagged with the pipeline stage, the device (track) it ran on, and the frame
// sequence — plus free-form instant events (dispatch decisions, breaker
// transitions, route changes). Spans either arrive complete (`span`) or are
// paired across components (`begin` on one device, `end` on another, keyed
// by (stage, sequence) — how a transport leg measures sender-to-receiver
// latency). The collected timeline exports as Chrome `trace_event` JSON for
// chrome://tracing / Perfetto.
//
// Cost discipline: every instrumentation site guards with
// `runtime::kTracingCompiledIn && tracer != nullptr`, so a null tracer costs
// one pointer compare and a -DGB_DISABLE_TRACING build (cmake option
// GB_DISABLE_TRACING) folds the whole call away at compile time.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "runtime/sim_clock.h"

namespace gb::runtime {

#if defined(GB_DISABLE_TRACING)
inline constexpr bool kTracingCompiledIn = false;
#else
inline constexpr bool kTracingCompiledIn = true;
#endif

// The offload pipeline's stages, in frame order (Eq. 5's decomposition plus
// the presenter). A displayed frame's spans tile [issue, display] without
// gaps: serialize covers pack-queue wait + pack + compress, uplink the
// transport leg to the renderer, remote-exec the in-order hold + GPU queue +
// render, turbo-encode the result encoding, downlink the return leg, decode
// the user-side Turbo decode, and present the in-order display wait.
enum class Stage : std::uint8_t {
  kSerialize = 0,
  kUplink,
  kRemoteExec,
  kTurboEncode,
  kDownlink,
  kDecode,
  kPresent,
  kLocalRender,  // fallback frames: local GPU queue + render
};

inline constexpr std::size_t kStageCount = 8;

[[nodiscard]] const char* stage_name(Stage stage);

// One timed interval on a track (track == the NodeId of the device it ran
// on; pipeline spans additionally carry the frame sequence).
struct TraceSpan {
  Stage stage = Stage::kSerialize;
  std::uint32_t track = 0;
  std::uint64_t sequence = 0;
  SimTime begin;
  SimTime end;
};

// A point event with optional numeric arguments (dispatch scores, cache hit
// counts, ...).
struct TraceInstant {
  std::string name;
  std::uint32_t track = 0;
  SimTime ts;
  std::vector<std::pair<std::string, double>> args;
};

class Tracer {
 public:
  // Records a complete span.
  void span(Stage stage, std::uint32_t track, std::uint64_t sequence,
            SimTime begin, SimTime end);

  // Opens a span to be closed by `end` with the same (stage, sequence) —
  // possibly from a different component. Re-opening an already-open key
  // overwrites it (a re-dispatched frame restarts its transport legs); a key
  // never closed is dropped at export.
  void begin(Stage stage, std::uint32_t track, std::uint64_t sequence,
             SimTime at);
  void end(Stage stage, std::uint64_t sequence, SimTime at);

  void instant(std::string name, std::uint32_t track, SimTime at,
               std::vector<std::pair<std::string, double>> args = {});

  void set_track_name(std::uint32_t track, std::string name);

  [[nodiscard]] const std::vector<TraceSpan>& spans() const { return spans_; }
  [[nodiscard]] const std::vector<TraceInstant>& instants() const {
    return instants_;
  }

  // Chrome trace_event JSON: thread_name metadata per track, "X" complete
  // events (sorted by (tid, ts) so each track is monotonic), "i" instants.
  void write_chrome_json(std::ostream& out) const;

 private:
  std::vector<TraceSpan> spans_;
  std::vector<TraceInstant> instants_;
  // Open cross-component spans keyed (stage, sequence).
  std::map<std::pair<Stage, std::uint64_t>, TraceSpan> open_;
  std::map<std::uint32_t, std::string> track_names_;
};

}  // namespace gb::runtime
