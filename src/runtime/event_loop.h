// Discrete-event simulation kernel.
//
// Actors (apps, GPUs, network links, radios) schedule closures at future
// virtual times; EventLoop::run_until drains them in timestamp order. Ties
// are broken by insertion order so the simulation is fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "runtime/sim_clock.h"

namespace gb {

class EventLoop {
 public:
  using Handler = std::function<void()>;

  // Identifies a scheduled event so it can be cancelled.
  using EventId = std::uint64_t;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  // Schedules `handler` to run at absolute time `when` (clamped to now).
  EventId schedule_at(SimTime when, Handler handler);

  // Schedules `handler` to run `delay` after the current time.
  EventId schedule_after(SimTime delay, Handler handler) {
    return schedule_at(now_ + delay, std::move(handler));
  }

  // Cancels a pending event; a no-op if it already ran or was cancelled.
  void cancel(EventId id);

  // Runs events until the queue is empty or the next event is after
  // `deadline`; virtual time then rests at `deadline`.
  void run_until(SimTime deadline);

  // Runs a single event if one is pending; returns false when idle.
  bool step();

  [[nodiscard]] std::size_t pending_events() const noexcept;

 private:
  struct Event {
    SimTime when;
    std::uint64_t sequence;  // FIFO tie-break for equal timestamps
    EventId id;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  SimTime now_;
  std::uint64_t next_sequence_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<EventId> cancelled_;
};

}  // namespace gb
