#include "runtime/percentile.h"

#include <algorithm>
#include <cstddef>

namespace gb::runtime {

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[lo + 1] - sorted[lo]) * frac;
}

double lerp_within_bucket(double lo, double hi, double cumulative,
                          double bucket_count, double target) {
  const double within =
      std::clamp((target - cumulative) / bucket_count, 0.0, 1.0);
  return lo + (hi - lo) * within;
}

}  // namespace gb::runtime
