// Name-keyed counters, gauges, and fixed-bucket histograms (DESIGN.md §9).
//
// The registry is the aggregate companion to the Tracer's raw timeline:
// spans answer "what happened to frame 8317", histograms answer "what is the
// p99 of the uplink stage". Buckets are fixed at construction so observe()
// is a branchless-ish upper_bound + increment — cheap enough for per-frame
// call sites — and percentiles are extracted at read time by linear
// interpolation inside the covering bucket.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gb::runtime {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Histogram over fixed upper-bound buckets (ascending), with an implicit
// overflow bucket past the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  // Quantile in [0, 1] by linear interpolation within the covering bucket;
  // values in the overflow bucket report the largest observed value.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return counts_;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_seen_ = 0.0;
};

// Default latency buckets (milliseconds): sub-ms resolution where frame
// stages live, doubling out to multi-second stalls.
[[nodiscard]] std::vector<double> default_latency_bounds_ms();

// Owning registry; references returned are stable for its lifetime.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // First call fixes the bounds; later calls with the same name return the
  // existing histogram regardless of `bounds`.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = default_latency_bounds_ms());

  [[nodiscard]] const std::map<std::string, std::unique_ptr<Histogram>>&
  histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace gb::runtime
