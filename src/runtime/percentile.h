// Shared percentile math (DESIGN.md §9): one definition of "the q-th
// quantile" so per-user reports and the metrics registry agree.
//
// `percentile_sorted` is the linear-interpolation estimator on raw samples:
// rank h = q * (n - 1), lerped between the surrounding order statistics.
// The report code previously truncated to a nearest rank
// (`sorted[n * 95 / 100]`), which is badly biased at small n — with ten
// samples it reports the maximum as the p95 — and indexes one past the end
// at q = 1.0 when n is a multiple of 100/(100-q).
#pragma once

#include <span>

namespace gb::runtime {

// Quantile q in [0, 1] of an ascending-sorted sample set; 0.0 when empty.
[[nodiscard]] double percentile_sorted(std::span<const double> sorted,
                                       double q);

// Linear interpolation inside a histogram bucket (lo, hi] holding
// `bucket_count` observations, with `cumulative` observations in earlier
// buckets and `target` the cumulative rank being extracted. The same lerp
// percentile_sorted applies between order statistics, restated for
// fixed-bucket histograms.
[[nodiscard]] double lerp_within_bucket(double lo, double hi,
                                        double cumulative, double bucket_count,
                                        double target);

}  // namespace gb::runtime
