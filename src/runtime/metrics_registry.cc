#include "runtime/metrics_registry.h"

#include <algorithm>

#include "common/error.h"
#include "runtime/percentile.h"

namespace gb::runtime {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  check(!bounds_.empty(), "histogram needs at least one bucket bound");
  check(std::is_sorted(bounds_.begin(), bounds_.end()),
        "histogram bounds must ascend");
}

void Histogram::observe(double value) {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<std::size_t>(it - bounds_.begin())]++;
  count_++;
  sum_ += value;
  max_seen_ = std::max(max_seen_, value);
}

double Histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const std::uint64_t next = cumulative + counts_[i];
    if (static_cast<double>(next) >= target) {
      if (i == counts_.size() - 1) return max_seen_;  // overflow bucket
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      return lerp_within_bucket(lo, hi, static_cast<double>(cumulative),
                                static_cast<double>(counts_[i]), target);
    }
    cumulative = next;
  }
  return max_seen_;
}

std::vector<double> default_latency_bounds_ms() {
  return {0.05, 0.1,  0.25, 0.5,  1.0,   2.0,   4.0,    8.0,    16.0,
          33.0, 66.0, 133.0, 266.0, 533.0, 1066.0, 2133.0, 4266.0};
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

}  // namespace gb::runtime
