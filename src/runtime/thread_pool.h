// Shared worker pool for the per-frame hot paths (Turbo codec tiles,
// rasterizer row bands, service-device replay+encode). The scheduling model
// is deliberately simple — chunked parallel_for over an index range with the
// calling thread participating — because every user of the pool partitions
// its work into independent, exclusively-owned slices up front; there is no
// work stealing and no nested submission.
//
// Determinism contract: parallel_for invokes `fn` on every chunk exactly
// once, and callers arrange that chunk outputs are combined in index order,
// so results are bit-identical for any thread count (the determinism tests
// in tests/test_parallel.cc pin this property for the codec and rasterizer).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gb::runtime {

class ThreadPool {
 public:
  // `threads` is the total concurrency including the calling thread:
  // 0 picks std::thread::hardware_concurrency(); 1 runs everything inline
  // on the caller (no worker threads, fully deterministic fallback).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int thread_count() const noexcept { return thread_count_; }
  [[nodiscard]] bool serial() const noexcept { return workers_.empty(); }

  // Splits [begin, end) into chunks of at most `grain` indices and runs
  // `fn(chunk_begin, chunk_end)` for each, using the workers plus the
  // calling thread. Blocks until every chunk has finished. The first
  // exception thrown by `fn` is rethrown on the caller after completion.
  // With no workers (threads == 1) the chunks run inline in index order.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

 private:
  struct Job;

  void worker_loop();
  static void run_job(Job& job);

  int thread_count_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  // At most one active parallel_for at a time. Shared ownership: a worker
  // holds a reference across its whole claim loop, so the job outlives the
  // caller's return even if the worker is still spinning on claimed-out
  // chunks when the last chunk completes.
  std::shared_ptr<Job> job_;
  bool stopping_ = false;
};

}  // namespace gb::runtime
