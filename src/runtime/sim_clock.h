// Virtual time. The entire system — GPU timing, network links, radio power
// states, traffic forecasting — runs against SimTime, never wall-clock time,
// so simulations are deterministic and can cover a 15-minute gameplay session
// in milliseconds of host CPU.
#pragma once

#include <compare>
#include <cstdint>

namespace gb {

// Monotonic simulated time with microsecond resolution. A strong type (not a
// bare integer) so durations and instants cannot be mixed accidentally.
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime from_us(std::int64_t us) { return SimTime(us); }
  static constexpr SimTime from_ms(double ms) {
    return SimTime(static_cast<std::int64_t>(ms * 1000.0));
  }
  static constexpr SimTime from_seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e6));
  }

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(us_) / 1e3; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(us_) / 1e6;
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(a.us_ + b.us_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(a.us_ - b.us_);
  }
  SimTime& operator+=(SimTime d) {
    us_ += d.us_;
    return *this;
  }

 private:
  constexpr explicit SimTime(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

// Convenience duration factories so call sites read like prose:
// `clock.advance(ms(16.7))`.
constexpr SimTime us(std::int64_t v) { return SimTime::from_us(v); }
constexpr SimTime ms(double v) { return SimTime::from_ms(v); }
constexpr SimTime seconds(double v) { return SimTime::from_seconds(v); }

}  // namespace gb
