// Gameplay experience metrics (§VII-B).
//
//   median FPS    — median of per-second frame counts; naturally insensitive
//                   to loading-screen outliers (0 or 60 FPS spikes);
//   FPS stability — fraction of the session's seconds whose frame rate lies
//                   within ±20% of the median;
//   response time — mean issue-to-display latency of a rendering request
//                   (Eq. 5: 1000/FPS locally, plus the offload pipeline time
//                   t_p when remote).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "runtime/sim_clock.h"
#include "runtime/trace.h"

namespace gb::sim {

// Latency distribution of one pipeline stage across the session's displayed
// frames (from the tracer's spans; DESIGN.md §9).
struct StageStats {
  std::uint64_t count = 0;  // displayed frames with at least one span
  double total_ms = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

struct SessionMetrics {
  double median_fps = 0.0;
  double fps_stability = 0.0;      // in [0,1]
  double avg_response_ms = 0.0;
  std::uint64_t frames_displayed = 0;
  double duration_s = 0.0;
  std::vector<int> fps_timeline;   // frames per second-bucket
  // --- stall metrics (fault-recovery studies) ------------------------------
  // Longest wall-clock gap between consecutive displayed frames.
  double max_display_gap_s = 0.0;
  // Total time the display was visibly frozen: the sum, over inter-frame
  // gaps longer than 100 ms, of the excess past that threshold.
  double stall_seconds = 0.0;
  // Tail issue-to-display latencies. p95 is the QoS governor's control
  // target (DESIGN.md §11) and the overload benchmark's headline metric.
  double p95_response_ms = 0.0;
  double p99_response_ms = 0.0;
  // Mean *measured* issue-to-display latency. Unlike avg_response_ms (which
  // the offload session overwrites with the Eq. 5 model), this is always the
  // raw mean of the displayed frames' latencies — the quantity the tracer's
  // per-stage spans must sum to.
  double avg_issue_to_display_ms = 0.0;
  // --- per-stage latency breakdown (tracing enabled only) ------------------
  bool has_stage_breakdown = false;
  std::array<StageStats, runtime::kStageCount> stage_breakdown{};
};

// Fills metrics.stage_breakdown from a session's trace: for every frame with
// a present (or local-render) span, per-stage span durations are summed and
// fed into fixed-bucket histograms. Stage means over displayed offloaded
// frames tile the issue-to-display interval, so
//   sum over stages of mean_ms * (count / frames)  ≈  avg_issue_to_display_ms
// (exact when every displayed frame took the same path).
void fill_stage_breakdown(const runtime::Tracer& tracer,
                          SessionMetrics& metrics);

class MetricsCollector {
 public:
  void on_frame_displayed(SimTime when, SimTime response_latency);

  [[nodiscard]] SessionMetrics finalize(SimTime session_duration) const;

 private:
  std::vector<int> per_second_;
  std::vector<double> latencies_ms_;
  double response_ms_sum_ = 0.0;
  std::uint64_t frames_ = 0;
  bool have_last_display_ = false;
  SimTime last_display_;
  double max_gap_s_ = 0.0;
  double stall_s_ = 0.0;
};

}  // namespace gb::sim
