#include "sim/metrics.h"

#include <algorithm>

namespace gb::sim {

void MetricsCollector::on_frame_displayed(SimTime when,
                                          SimTime response_latency) {
  const auto bucket = static_cast<std::size_t>(when.seconds());
  if (per_second_.size() <= bucket) per_second_.resize(bucket + 1, 0);
  per_second_[bucket]++;
  response_ms_sum_ += response_latency.ms();
  latencies_ms_.push_back(response_latency.ms());
  if (have_last_display_) {
    const double gap_s = (when - last_display_).seconds();
    max_gap_s_ = std::max(max_gap_s_, gap_s);
    // A gap under ~100 ms reads as a dropped frame or two; past that the
    // display is visibly frozen — count the excess as stall time.
    constexpr double kStallThresholdS = 0.1;
    if (gap_s > kStallThresholdS) stall_s_ += gap_s - kStallThresholdS;
  }
  last_display_ = when;
  have_last_display_ = true;
  frames_++;
}

SessionMetrics MetricsCollector::finalize(SimTime session_duration) const {
  SessionMetrics m;
  m.frames_displayed = frames_;
  m.duration_s = session_duration.seconds();
  m.fps_timeline = per_second_;
  if (per_second_.empty() || frames_ == 0) return m;

  // Drop the first and last buckets (session warm-up / partial second) —
  // the "loading screens and menus" the median is meant to sidestep.
  std::vector<int> buckets = per_second_;
  if (buckets.size() > 4) {
    buckets.erase(buckets.begin());
    buckets.pop_back();
  }
  std::vector<int> sorted = buckets;
  std::sort(sorted.begin(), sorted.end());
  m.median_fps = static_cast<double>(sorted[sorted.size() / 2]);

  if (m.median_fps > 0.0) {
    const double lo = m.median_fps * 0.8;
    const double hi = m.median_fps * 1.2;
    int stable = 0;
    for (const int fps : buckets) {
      if (fps >= lo && fps <= hi) ++stable;
    }
    m.fps_stability = static_cast<double>(stable) /
                      static_cast<double>(buckets.size());
  }
  m.avg_response_ms = response_ms_sum_ / static_cast<double>(frames_);
  m.max_display_gap_s = max_gap_s_;
  m.stall_seconds = stall_s_;
  std::vector<double> sorted_lat = latencies_ms_;
  std::sort(sorted_lat.begin(), sorted_lat.end());
  m.p99_response_ms =
      sorted_lat[static_cast<std::size_t>(
          static_cast<double>(sorted_lat.size() - 1) * 0.99)];
  return m;
}

}  // namespace gb::sim
