#include "sim/metrics.h"

#include <algorithm>
#include <map>
#include <set>

#include "runtime/metrics_registry.h"

namespace gb::sim {

void MetricsCollector::on_frame_displayed(SimTime when,
                                          SimTime response_latency) {
  const auto bucket = static_cast<std::size_t>(when.seconds());
  if (per_second_.size() <= bucket) per_second_.resize(bucket + 1, 0);
  per_second_[bucket]++;
  response_ms_sum_ += response_latency.ms();
  latencies_ms_.push_back(response_latency.ms());
  if (have_last_display_) {
    const double gap_s = (when - last_display_).seconds();
    max_gap_s_ = std::max(max_gap_s_, gap_s);
    // A gap under ~100 ms reads as a dropped frame or two; past that the
    // display is visibly frozen — count the excess as stall time.
    constexpr double kStallThresholdS = 0.1;
    if (gap_s > kStallThresholdS) stall_s_ += gap_s - kStallThresholdS;
  }
  last_display_ = when;
  have_last_display_ = true;
  frames_++;
}

SessionMetrics MetricsCollector::finalize(SimTime session_duration) const {
  SessionMetrics m;
  m.frames_displayed = frames_;
  m.duration_s = session_duration.seconds();
  m.fps_timeline = per_second_;
  if (per_second_.empty() || frames_ == 0) return m;

  // Drop the first and last buckets (session warm-up / partial second) —
  // the "loading screens and menus" the median is meant to sidestep.
  std::vector<int> buckets = per_second_;
  if (buckets.size() > 4) {
    buckets.erase(buckets.begin());
    buckets.pop_back();
  }
  std::vector<int> sorted = buckets;
  std::sort(sorted.begin(), sorted.end());
  m.median_fps = static_cast<double>(sorted[sorted.size() / 2]);

  if (m.median_fps > 0.0) {
    const double lo = m.median_fps * 0.8;
    const double hi = m.median_fps * 1.2;
    int stable = 0;
    for (const int fps : buckets) {
      if (fps >= lo && fps <= hi) ++stable;
    }
    m.fps_stability = static_cast<double>(stable) /
                      static_cast<double>(buckets.size());
  }
  m.avg_response_ms = response_ms_sum_ / static_cast<double>(frames_);
  m.avg_issue_to_display_ms = m.avg_response_ms;
  m.max_display_gap_s = max_gap_s_;
  m.stall_seconds = stall_s_;
  std::vector<double> sorted_lat = latencies_ms_;
  std::sort(sorted_lat.begin(), sorted_lat.end());
  m.p95_response_ms =
      sorted_lat[static_cast<std::size_t>(
          static_cast<double>(sorted_lat.size() - 1) * 0.95)];
  m.p99_response_ms =
      sorted_lat[static_cast<std::size_t>(
          static_cast<double>(sorted_lat.size() - 1) * 0.99)];
  return m;
}

void fill_stage_breakdown(const runtime::Tracer& tracer,
                          SessionMetrics& metrics) {
  // Only frames that made it to the screen participate: a span belonging to
  // an abandoned/redispatched attempt that never displayed would otherwise
  // skew the stage means away from the displayed-latency mean.
  std::set<std::uint64_t> displayed;
  for (const runtime::TraceSpan& span : tracer.spans()) {
    if (span.stage == runtime::Stage::kPresent ||
        span.stage == runtime::Stage::kLocalRender) {
      displayed.insert(span.sequence);
    }
  }
  if (displayed.empty()) return;

  // Sum span durations per (stage, displayed sequence) — a stage may emit
  // several spans for one frame (e.g. a retried uplink), and they add up.
  std::map<std::pair<runtime::Stage, std::uint64_t>, double> per_frame_ms;
  for (const runtime::TraceSpan& span : tracer.spans()) {
    if (!displayed.contains(span.sequence)) continue;
    per_frame_ms[{span.stage, span.sequence}] += (span.end - span.begin).ms();
  }

  std::vector<runtime::Histogram> histograms;
  histograms.reserve(runtime::kStageCount);
  for (std::size_t i = 0; i < runtime::kStageCount; ++i) {
    histograms.emplace_back(runtime::default_latency_bounds_ms());
  }
  for (const auto& [key, ms] : per_frame_ms) {
    histograms[static_cast<std::size_t>(key.first)].observe(ms);
  }
  for (std::size_t i = 0; i < runtime::kStageCount; ++i) {
    StageStats& stage = metrics.stage_breakdown[i];
    const runtime::Histogram& h = histograms[i];
    stage.count = h.count();
    stage.total_ms = h.sum();
    stage.mean_ms = h.count() > 0 ? h.mean() : 0.0;
    stage.p50_ms = h.percentile(0.5);
    stage.p99_ms = h.percentile(0.99);
  }
  metrics.has_stage_breakdown = true;
}

}  // namespace gb::sim
