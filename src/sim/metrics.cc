#include "sim/metrics.h"

#include <algorithm>

namespace gb::sim {

void MetricsCollector::on_frame_displayed(SimTime when,
                                          SimTime response_latency) {
  const auto bucket = static_cast<std::size_t>(when.seconds());
  if (per_second_.size() <= bucket) per_second_.resize(bucket + 1, 0);
  per_second_[bucket]++;
  response_ms_sum_ += response_latency.ms();
  frames_++;
}

SessionMetrics MetricsCollector::finalize(SimTime session_duration) const {
  SessionMetrics m;
  m.frames_displayed = frames_;
  m.duration_s = session_duration.seconds();
  m.fps_timeline = per_second_;
  if (per_second_.empty() || frames_ == 0) return m;

  // Drop the first and last buckets (session warm-up / partial second) —
  // the "loading screens and menus" the median is meant to sidestep.
  std::vector<int> buckets = per_second_;
  if (buckets.size() > 4) {
    buckets.erase(buckets.begin());
    buckets.pop_back();
  }
  std::vector<int> sorted = buckets;
  std::sort(sorted.begin(), sorted.end());
  m.median_fps = static_cast<double>(sorted[sorted.size() / 2]);

  if (m.median_fps > 0.0) {
    const double lo = m.median_fps * 0.8;
    const double hi = m.median_fps * 1.2;
    int stable = 0;
    for (const int fps : buckets) {
      if (fps >= lo && fps <= hi) ++stable;
    }
    m.fps_stability = static_cast<double>(stable) /
                      static_cast<double>(buckets.size());
  }
  m.avg_response_ms = response_ms_sum_ / static_cast<double>(frames_);
  return m;
}

}  // namespace gb::sim
