// OnLive-style cloud remote-rendering comparator (§VII-F).
//
// The cloud path differs from GBooster structurally: the whole game runs in
// a distant datacenter, frames are compressed by a video encoder capped at
// 30 FPS, and everything crosses a consumer Internet uplink. This analytic
// model computes the resulting frame rate and response time so
// bench_cloud_comparison can print the paper's comparison (30 FPS capped,
// ~150 ms response ≈ 5x GBooster's).
#pragma once

#include <algorithm>

namespace gb::sim {

struct CloudConfig {
  double internet_bandwidth_bps = 10e6;  // §VII-F: 10 Mbps connection
  double internet_rtt_ms = 80.0;         // long-haul path to the datacenter
  int stream_width = 1280;
  int stream_height = 720;
  int encoder_fps_cap = 30;              // the platform's video encoder cap
  double video_bits_per_pixel = 0.08;    // H.264-class streaming rate
  double encode_latency_ms = 18.0;       // hardware encoder + pacing
  double decode_latency_ms = 12.0;       // phone-side video decode
  double server_render_ms = 8.0;         // datacenter GPU per frame
};

struct CloudResult {
  double fps = 0.0;
  double response_time_ms = 0.0;
  double stream_mbps = 0.0;
};

inline CloudResult evaluate_cloud(const CloudConfig& c) {
  CloudResult r;
  const double pixels =
      static_cast<double>(c.stream_width) * c.stream_height;
  const double frame_bits = pixels * c.video_bits_per_pixel;
  // Achievable FPS: encoder cap vs what the pipe can carry.
  const double network_fps = c.internet_bandwidth_bps / frame_bits;
  r.fps = std::min(static_cast<double>(c.encoder_fps_cap), network_fps);
  r.stream_mbps = frame_bits * r.fps / 1e6;
  // Response: input uplink + server render + encode + frame downlink
  // (serialization at the bottleneck link) + decode + half-frame pacing.
  const double frame_serialization_ms =
      frame_bits / c.internet_bandwidth_bps * 1000.0;
  r.response_time_ms = c.internet_rtt_ms + c.server_render_ms +
                       c.encode_latency_ms + frame_serialization_ms +
                       c.decode_latency_ms + 0.5 * 1000.0 / r.fps;
  return r;
}

}  // namespace gb::sim
