// Multi-user sessions (§VIII "Towards Multiple Users").
//
// Several user devices offload to the *same* service device simultaneously.
// The paper's prototype queues their rendering requests FCFS and notes the
// problem: a fast-paced shooter and a patient puzzle game get equal
// treatment, so the shooter's response time suffers. This harness runs the
// shared-service scenario under both disciplines — FCFS (the prototype) and
// the priority scheduling §VIII proposes — and reports per-user metrics.
#pragma once

#include <string>
#include <vector>

#include "apps/workload.h"
#include "core/qos_governor.h"
#include "device/device_profiles.h"
#include "device/gpu_model.h"
#include "sim/metrics.h"

namespace gb::sim {

struct MultiUserParticipant {
  apps::WorkloadSpec workload;
  device::DeviceProfile phone;
  // §VIII urgency: lower = more time-critical (only matters under
  // kPriority scheduling at the service device).
  int priority = 0;
};

struct MultiUserConfig {
  std::vector<MultiUserParticipant> users;
  device::DeviceProfile service_device;  // its gpu.scheduling picks FCFS/prio
  double duration_s = 120.0;
  std::uint64_t seed = 1;
  int render_width = 96;
  int render_height = 72;
  int content_sample_every = 8;
  // In-flight budget per user. Shallow pipelines make per-request queueing
  // visible in the latency numbers (deep pipelines hide scheduler effects
  // behind self-queueing).
  int max_pending = 2;
  // Service-side per-user admission cap (DESIGN.md §11); 0 disables.
  int admission_queue_cap = 0;
  // User-side QoS governor applied to every participant (disabled by
  // default, like single-user sessions).
  core::QosGovernorConfig qos;
};

struct MultiUserResult {
  // Indexed like config.users.
  std::vector<SessionMetrics> per_user;
  // Mean and tail issue->display latency per user (the §VIII response-time
  // metric — measured end to end, queueing included). The tail is where
  // FCFS hurts: the urgent user occasionally queues behind a heavy request.
  std::vector<double> mean_latency_ms;
  std::vector<double> p95_latency_ms;
  // Requests of each user shed by service-side admission control
  // (DESIGN.md §11); all-zero when admission_queue_cap is 0.
  std::vector<std::uint64_t> service_sheds_per_user;
  // Frames each user's own governor shed before dispatch (window/deadline/
  // void causes combined); all-zero when the governor is disabled.
  std::vector<std::uint64_t> governor_sheds_per_user;
  double service_gpu_busy_fraction = 0.0;
};

MultiUserResult run_multiuser_session(const MultiUserConfig& config);

}  // namespace gb::sim
