// Multi-user sessions (§VIII "Towards Multiple Users").
//
// Several user devices offload to the *same* service device simultaneously.
// The paper's prototype queues their rendering requests FCFS and notes the
// problem: a fast-paced shooter and a patient puzzle game get equal
// treatment, so the shooter's response time suffers. This harness runs the
// shared-service scenario under both disciplines — FCFS (the prototype) and
// the priority scheduling §VIII proposes — and reports per-user metrics.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/workload.h"
#include "compress/shared_store.h"
#include "core/qos_governor.h"
#include "device/device_profiles.h"
#include "device/gpu_model.h"
#include "sim/metrics.h"

namespace gb::sim {

struct MultiUserParticipant {
  apps::WorkloadSpec workload;
  device::DeviceProfile phone;
  // §VIII urgency: lower = more time-critical (only matters under
  // kPriority scheduling at the service device).
  int priority = 0;
  // Shared-store identity (DESIGN.md §14): users running the same app_id
  // dedup each other's static record uploads at the service device.
  std::uint64_t app_id = 0;
  // Session-start stagger: this user's join handshake (and held frames) wait
  // this long, so later users join against a store earlier ones populated.
  double join_delay_s = 0.0;
};

struct MultiUserConfig {
  std::vector<MultiUserParticipant> users;
  device::DeviceProfile service_device;  // its gpu.scheduling picks FCFS/prio
  double duration_s = 120.0;
  std::uint64_t seed = 1;
  int render_width = 96;
  int render_height = 72;
  int content_sample_every = 8;
  // In-flight budget per user. Shallow pipelines make per-request queueing
  // visible in the latency numbers (deep pipelines hide scheduler effects
  // behind self-queueing).
  int max_pending = 2;
  // Service-side per-user admission cap (DESIGN.md §11); 0 disables.
  int admission_queue_cap = 0;
  // User-side QoS governor applied to every participant (disabled by
  // default, like single-user sessions).
  core::QosGovernorConfig qos;
  // Cross-session shared-store dedup (DESIGN.md §14). When enabled, every
  // user joins with its app_id and the service deduplicates static record
  // payloads across users in `shared_store` (a fresh registry is created
  // when null; pass one in to carry residency across harness calls).
  bool shared_dedup = false;
  std::shared_ptr<compress::SharedStoreRegistry> shared_store;
};

struct MultiUserResult {
  // Indexed like config.users.
  std::vector<SessionMetrics> per_user;
  // Mean and tail issue->display latency per user (the §VIII response-time
  // metric — measured end to end, queueing included). The tail is where
  // FCFS hurts: the urgent user occasionally queues behind a heavy request.
  std::vector<double> mean_latency_ms;
  std::vector<double> p95_latency_ms;
  // Requests of each user shed by service-side admission control
  // (DESIGN.md §11); all-zero when admission_queue_cap is 0.
  std::vector<std::uint64_t> service_sheds_per_user;
  // Frames each user's own governor shed before dispatch (window/deadline/
  // void causes combined); all-zero when the governor is disabled.
  std::vector<std::uint64_t> governor_sheds_per_user;
  double service_gpu_busy_fraction = 0.0;
  // Uplink payload bytes and shared-reference hits per user (DESIGN.md §14):
  // with shared_dedup on, later same-app joiners should send fewer bytes and
  // show nonzero shared hits — the sub-linear-uplink check.
  std::vector<std::uint64_t> bytes_sent_per_user;
  std::vector<std::uint64_t> shared_hits_per_user;
  // Final shared-store occupancy for the app ids in play (0 when disabled).
  std::uint64_t shared_store_resident_bytes = 0;
};

MultiUserResult run_multiuser_session(const MultiUserConfig& config);

}  // namespace gb::sim
