// Fleet scenarios (DESIGN.md §15): many user devices offloading to a
// ServiceFleet of several service devices, with session churn (staggered
// arrivals and departures) and scripted live/cold session migrations.
//
// Each user runs the full GBooster stack against the one fleet device its
// session was placed on; the fleet makes the placement call (the session-
// granular extension of Eq. 4) and tracks tenancy. A migration event drains
// the user's slot off its current device and re-bases it on a target — live
// (GL-state snapshot + cache-mirror transfer, PR 4 machinery) or cold (the
// disconnect/reconnect-from-scratch baseline) — and the harness measures the
// migration blackout: the longest issue-to-display gap a viewer would see
// around the event.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "apps/workload.h"
#include "compress/shared_store.h"
#include "core/qos_governor.h"
#include "core/service_fleet.h"
#include "device/device_profiles.h"
#include "sim/metrics.h"

namespace gb::sim {

struct FleetUserSpec {
  apps::WorkloadSpec workload;
  device::DeviceProfile phone;
  // Shared-store identity (DESIGN.md §14) when the scenario enables dedup.
  std::uint64_t app_id = 0;
  // Session lifetime within the run; depart_s <= 0 means "stays to the end".
  double arrive_s = 0.0;
  double depart_s = 0.0;
};

struct FleetMigrationSpec {
  std::size_t user_index = 0;
  double at_s = 0.0;
  // Target fleet device; -1 picks the coolest device (lowest placement
  // score with session headroom) at migration time.
  int to_device = -1;
  bool cold = false;           // disconnect/reconnect baseline
  double reconnect_delay_s = 0.25;  // cold: dark window before reconnect
  double drain_s = 0.5;             // live: old-device drain window
};

struct FleetScenarioConfig {
  std::vector<FleetUserSpec> users;
  std::vector<device::DeviceProfile> devices;
  int max_sessions_per_device = 8;
  double duration_s = 30.0;
  std::uint64_t seed = 1;
  int render_width = 96;
  int render_height = 72;
  int content_sample_every = 8;
  int max_pending = 2;
  // Per-user QoS governor. Cold-migration scenarios must enable it: with
  // the slot dark and local fallback off, the legacy issue path has no
  // healthy device to pick (the governor sheds those frames void instead).
  core::QosGovernorConfig qos;
  // Local-GPU fallback while a slot is dark. Off by default so migration
  // cost shows up as blackout/drops instead of being papered over.
  bool local_fallback = false;
  bool shared_dedup = false;
  // Carries residency across harness calls when set (else created fresh
  // whenever shared_dedup is on). The same registry backs every fleet
  // device — the §14 fleet-wide store.
  std::shared_ptr<compress::SharedStoreRegistry> shared_store;
  std::vector<FleetMigrationSpec> migrations;
};

struct FleetMigrationOutcome {
  std::size_t user_index = 0;
  double at_s = 0.0;
  std::size_t from_device = 0;
  std::size_t to_device = 0;
  bool cold = false;
  // Longest gap between consecutive displayed frames in the migration
  // window [at_s - 0.5 s, at_s + 3 s] — what the viewer perceives as the
  // migration hiccup. Covers the straddling gap (last display before the
  // event to first display after).
  double blackout_ms = 0.0;
  // Frames this user lost for good from the event to the end of the run
  // (presenter gap-timeout reclaims plus governor void sheds).
  std::uint64_t frames_lost = 0;
};

struct FleetScenarioResult {
  // Indexed like config.users.
  std::vector<SessionMetrics> per_user;
  std::vector<double> mean_latency_ms;
  std::vector<double> p95_latency_ms;
  std::vector<double> p99_latency_ms;
  std::vector<std::uint64_t> frames_displayed_per_user;
  std::vector<std::uint64_t> frames_lost_per_user;  // drops + void sheds
  std::vector<std::uint64_t> migrations_per_user;
  // Indexed like config.devices.
  std::vector<std::size_t> final_sessions_per_device;
  std::vector<double> device_busy_fraction;
  std::vector<std::uint64_t> users_released_per_device;
  std::vector<std::uint64_t> renders_dropped_unresolvable_per_device;
  // Shared-store join handshakes each device answered (a live migration adds
  // the target's re-join on top of the source's original).
  std::vector<std::uint64_t> joins_answered_per_device;
  std::vector<FleetMigrationOutcome> migrations;
  core::ServiceFleetStats fleet;
};

FleetScenarioResult run_fleet_scenario(const FleetScenarioConfig& config);

}  // namespace gb::sim
