#include "sim/fleet.h"

#include <algorithm>
#include <functional>
#include <memory>

#include "apps/game_app.h"
#include "apps/touch.h"
#include "common/error.h"
#include "core/gbooster.h"
#include "gles/direct_backend.h"
#include "hooking/dynamic_linker.h"
#include "net/medium.h"
#include "net/radio.h"
#include "net/reliable.h"
#include "runtime/event_loop.h"
#include "runtime/percentile.h"

namespace gb::sim {
namespace {

constexpr net::NodeId kFirstDeviceNode = 100;

// One user device's full stack plus per-run measurement state. Built lazily
// at the user's arrival time so placement sees the fleet as it is then.
struct User {
  std::unique_ptr<net::RadioInterface> radio;
  std::unique_ptr<net::ReliableEndpoint> endpoint;
  std::unique_ptr<core::GBoosterRuntime> gbooster;
  std::unique_ptr<hooking::DynamicLinker> linker;
  std::unique_ptr<gles::DirectBackend> genuine;
  std::unique_ptr<gles::GlesApi> api;
  std::unique_ptr<apps::GameApp> app;
  std::unique_ptr<apps::TouchScript> touch;
  MetricsCollector metrics;
  std::vector<double> latencies_ms;
  std::vector<double> display_times_s;  // wall clock of each display
  double cpu_frame_s = 0.016;
  SimTime next_allowed;
  bool waiting = false;
  bool active = false;  // arrived and not departed
};

[[nodiscard]] std::uint64_t frames_lost_so_far(
    const core::GBoosterRuntime& gbooster) {
  // What the viewer never saw: presenter gap-timeout reclaims plus frames
  // the governor shed because no healthy device existed (the dark window).
  return gbooster.stats().frames_dropped + gbooster.stats().frames_shed_void;
}

}  // namespace

FleetScenarioResult run_fleet_scenario(const FleetScenarioConfig& config) {
  check(!config.users.empty(), "fleet scenario needs at least one user");
  check(!config.devices.empty(), "fleet scenario needs at least one device");
  EventLoop loop;
  Rng rng(config.seed);

  net::MediumConfig wifi_config;
  wifi_config.loss_rate = 0.002;
  net::Medium wifi(loop, wifi_config, rng.fork(), "wifi");

  core::ServiceFleetConfig fleet_config;
  fleet_config.service.render_width = config.render_width;
  fleet_config.service.render_height = config.render_height;
  fleet_config.service.content_sample_every = config.content_sample_every;
  std::shared_ptr<compress::SharedStoreRegistry> shared_store =
      config.shared_store;
  if (config.shared_dedup) {
    if (shared_store == nullptr) {
      shared_store = std::make_shared<compress::SharedStoreRegistry>();
    }
    fleet_config.service.shared_store = shared_store;
  }
  std::vector<core::FleetDeviceConfig> device_configs;
  for (std::size_t d = 0; d < config.devices.size(); ++d) {
    device_configs.push_back(core::FleetDeviceConfig{
        kFirstDeviceNode + static_cast<net::NodeId>(d), config.devices[d],
        config.max_sessions_per_device});
  }
  core::ServiceFleet fleet(loop, fleet_config, std::move(device_configs));
  for (std::size_t d = 0; d < fleet.device_count(); ++d) {
    fleet.runtime(d).endpoint().bind(wifi, nullptr);
  }

  std::vector<std::unique_ptr<User>> users(config.users.size());
  std::vector<std::function<void()>> attempts(config.users.size());
  FleetScenarioResult result;
  result.migrations_per_user.assign(config.users.size(), 0);
  // Per-migration frames_lost baselines, filled when the event fires.
  std::vector<std::uint64_t> lost_baseline;

  // --- arrival: build the stack, place the session ---------------------------
  auto arrive = [&](std::size_t u) {
    const FleetUserSpec& spec = config.users[u];
    const net::NodeId node = static_cast<net::NodeId>(1 + u);
    const double workload = spec.workload.gpu_workload_pixels;
    const auto placed = fleet.place_session(node, workload);
    if (!placed.has_value()) return;  // every device at its session cap

    auto user = std::make_unique<User>();
    user->radio = std::make_unique<net::RadioInterface>(
        loop, net::wifi_radio_config(), "user" + std::to_string(u) + "-wifi");
    user->endpoint = std::make_unique<net::ReliableEndpoint>(loop, node);
    user->endpoint->bind(wifi, user->radio.get());

    core::GBoosterConfig gb_config;
    gb_config.max_pending_requests = config.max_pending;
    gb_config.state_group = 0xff00 + static_cast<net::NodeId>(u);
    gb_config.qos = config.qos;
    gb_config.enable_local_fallback = config.local_fallback;
    if (config.shared_dedup) {
      gb_config.shared_dedup = true;
      gb_config.app_id = spec.app_id;
    }
    user->gbooster = std::make_unique<core::GBoosterRuntime>(
        loop, gb_config, *user->endpoint,
        std::vector<core::ServiceDeviceInfo>{fleet.device_info(*placed)});
    core::GBoosterRuntime* gbooster = user->gbooster.get();
    user->endpoint->set_handler(
        [gbooster](net::NodeId src, net::NodeId stream, Bytes message) {
          gbooster->on_message(src, stream, std::move(message));
        });
    user->gbooster->set_workload_override([workload] { return workload; });

    user->linker = std::make_unique<hooking::DynamicLinker>();
    user->genuine =
        std::make_unique<gles::DirectBackend>(64, 48, gles::PresentFn{});
    user->linker->register_library(hooking::LibraryImage::exporting_all(
        "libGLESv2.so", user->genuine.get()));
    user->gbooster->install(*user->linker);
    user->api = user->linker->link_gles("libGLESv2.so");

    user->app = std::make_unique<apps::GameApp>(spec.workload, *user->api,
                                                600, 480, rng.fork());
    user->app->setup();
    apps::TouchScriptConfig touch_config;
    touch_config.duration_s = config.duration_s - spec.arrive_s;
    touch_config.burst_rate_hz = spec.workload.burst_rate_hz;
    touch_config.burst_duration_s = spec.workload.burst_duration_s;
    user->touch = std::make_unique<apps::TouchScript>(touch_config, rng.fork());
    user->cpu_frame_s =
        spec.workload.cpu_frame_seconds / spec.phone.cpu_perf_index;
    user->active = true;

    User* raw = user.get();
    const SimTime min_interval = seconds(1.0 / spec.workload.target_fps);
    attempts[u] = [&, raw, u, min_interval] {
      if (!raw->active || loop.now().seconds() >= config.duration_s) return;
      if (!raw->gbooster->can_issue_frame()) {
        // Wake on the next display, with a timed backstop: a dark slot can
        // strand every pending frame, in which case no display ever comes.
        if (!raw->waiting) {
          raw->waiting = true;
          loop.schedule_after(min_interval, [&, raw, u] {
            if (raw->waiting) {
              raw->waiting = false;
              attempts[u]();
            }
          });
        }
        return;
      }
      loop.schedule_after(seconds(raw->cpu_frame_s), [&, raw, u,
                                                      min_interval] {
        if (!raw->active) return;
        const double now_s = loop.now().seconds();
        raw->app->render_frame(now_s, raw->touch->burst_active(now_s));
        const SimTime next =
            std::max(loop.now(), raw->next_allowed + min_interval);
        raw->next_allowed = next;
        loop.schedule_at(next, [&, u] { attempts[u](); });
      });
    };
    user->gbooster->set_display_handler(
        [&, raw, u](std::uint64_t, SimTime latency, const Image&) {
          raw->metrics.on_frame_displayed(loop.now(), latency);
          raw->latencies_ms.push_back(latency.ms());
          raw->display_times_s.push_back(loop.now().seconds());
          if (raw->waiting) {
            raw->waiting = false;
            attempts[u]();
          }
        });
    users[u] = std::move(user);
    attempts[u]();
  };

  for (std::size_t u = 0; u < config.users.size(); ++u) {
    const FleetUserSpec& spec = config.users[u];
    loop.schedule_at(seconds(spec.arrive_s), [&, u] { arrive(u); });
    if (spec.depart_s > 0.0) {
      loop.schedule_at(seconds(spec.depart_s), [&, u] {
        if (users[u] == nullptr || !users[u]->active) return;
        users[u]->active = false;
        fleet.release_session(static_cast<net::NodeId>(1 + u));
      });
    }
  }

  // --- scripted migrations ---------------------------------------------------
  for (const FleetMigrationSpec& spec : config.migrations) {
    check(spec.user_index < config.users.size(),
          "migration user index out of range");
    loop.schedule_at(seconds(spec.at_s), [&, spec] {
      User* user = users[spec.user_index].get();
      if (user == nullptr || !user->active) return;
      const net::NodeId node = static_cast<net::NodeId>(1 + spec.user_index);
      const auto from = fleet.session_device(node);
      if (!from.has_value()) return;
      const double workload =
          config.users[spec.user_index].workload.gpu_workload_pixels;
      std::size_t to = fleet.device_count();
      if (spec.to_device >= 0) {
        to = static_cast<std::size_t>(spec.to_device);
      } else {
        // Coolest device with session headroom, source excluded.
        double best_score = 0.0;
        for (std::size_t j = 0; j < fleet.device_count(); ++j) {
          if (j == *from) continue;
          if (fleet.session_count(j) >=
              static_cast<std::size_t>(fleet.device_config(j).max_sessions)) {
            continue;
          }
          const double score = fleet.placement_score(j, workload);
          if (to == fleet.device_count() || score < best_score) {
            to = j;
            best_score = score;
          }
        }
      }
      if (to >= fleet.device_count() || to == *from) return;

      core::MigrationOptions options;
      options.cold_restart = spec.cold;
      options.reconnect_delay = seconds(spec.reconnect_delay_s);
      options.drain_timeout = seconds(spec.drain_s);
      user->gbooster->migrate_service_device(0, fleet.device_info(to),
                                             options);
      fleet.register_session(node, to);
      result.migrations_per_user[spec.user_index]++;
      FleetMigrationOutcome outcome;
      outcome.user_index = spec.user_index;
      outcome.at_s = spec.at_s;
      outcome.from_device = *from;
      outcome.to_device = to;
      outcome.cold = spec.cold;
      result.migrations.push_back(outcome);
      lost_baseline.push_back(frames_lost_so_far(*user->gbooster));
      // The source runtime keeps the session through the drain window (its
      // in-flight results are still displaying), then releases it — closing
      // the shared-store lease, which is what makes its proof-covered
      // records evictable (the §14 lifecycle the client-side invalidation
      // guards against). Cold mode abandoned everything up front.
      const double release_delay_s = spec.cold ? 0.0 : spec.drain_s + 0.1;
      const std::size_t source = *from;
      loop.schedule_after(seconds(release_delay_s), [&, node, source] {
        (void)fleet.runtime(source).release_user(node);
      });
    });
  }

  loop.run_until(seconds(config.duration_s));

  // --- results ---------------------------------------------------------------
  for (std::size_t u = 0; u < config.users.size(); ++u) {
    SessionMetrics metrics;
    double mean = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    std::uint64_t displayed = 0;
    std::uint64_t lost = 0;
    if (users[u] != nullptr) {
      User& user = *users[u];
      metrics = user.metrics.finalize(seconds(config.duration_s));
      displayed = user.display_times_s.size();
      lost = frames_lost_so_far(*user.gbooster);
      if (!user.latencies_ms.empty()) {
        for (const double v : user.latencies_ms) mean += v;
        mean /= static_cast<double>(user.latencies_ms.size());
        std::vector<double> sorted = user.latencies_ms;
        std::sort(sorted.begin(), sorted.end());
        p95 = runtime::percentile_sorted(sorted, 0.95);
        p99 = runtime::percentile_sorted(sorted, 0.99);
      }
    }
    result.per_user.push_back(metrics);
    result.mean_latency_ms.push_back(mean);
    result.p95_latency_ms.push_back(p95);
    result.p99_latency_ms.push_back(p99);
    result.frames_displayed_per_user.push_back(displayed);
    result.frames_lost_per_user.push_back(lost);
  }
  for (std::size_t m = 0; m < result.migrations.size(); ++m) {
    FleetMigrationOutcome& outcome = result.migrations[m];
    const User* user = users[outcome.user_index].get();
    if (user == nullptr) continue;
    // Longest display gap whose interval intersects the migration window.
    const double w0 = outcome.at_s - 0.5;
    const double w1 = outcome.at_s + 3.0;
    double worst = 0.0;
    double prev = -1.0;
    for (const double t : user->display_times_s) {
      if (prev >= 0.0 && t > w0 && prev < w1) {
        worst = std::max(worst, t - prev);
      }
      prev = t;
    }
    // Tail: nothing displayed again before the end of the run.
    if (prev >= 0.0 && prev < w1) {
      worst = std::max(worst, config.duration_s - prev);
    }
    outcome.blackout_ms = worst * 1000.0;
    outcome.frames_lost =
        frames_lost_so_far(*user->gbooster) - lost_baseline[m];
  }
  for (std::size_t d = 0; d < fleet.device_count(); ++d) {
    result.final_sessions_per_device.push_back(fleet.session_count(d));
    core::ServiceRuntime& rt = fleet.runtime(d);
    rt.gpu().sync();
    result.device_busy_fraction.push_back(rt.gpu().busy_seconds() /
                                          config.duration_s);
    result.users_released_per_device.push_back(rt.stats().users_released);
    result.renders_dropped_unresolvable_per_device.push_back(
        rt.stats().renders_dropped_unresolvable);
    result.joins_answered_per_device.push_back(rt.stats().joins_answered);
  }
  result.fleet = fleet.stats();
  return result;
}

}  // namespace gb::sim
