#include "sim/session.h"

#include <algorithm>
#include <memory>

#include "apps/game_app.h"
#include "common/error.h"
#include "gles/direct_backend.h"
#include "hooking/dynamic_linker.h"
#include "net/fault_plan.h"
#include "net/medium.h"
#include "net/radio.h"
#include "net/reliable.h"
#include "runtime/event_loop.h"
#include "runtime/metrics_registry.h"

namespace gb::sim {
namespace {

// Shared app-pacing actor: runs the game loop, charging the render thread's
// CPU time, capping at target_fps, and blocking when the pipeline's pending
// budget is exhausted.
class AppDriver {
 public:
  AppDriver(EventLoop& loop, apps::GameApp& app, const apps::TouchScript& touch,
            const SessionConfig& config, Rng rng)
      : loop_(loop),
        app_(app),
        touch_(touch),
        config_(config),
        rng_(rng),
        cpu_frame_s_(config.workload.cpu_frame_seconds /
                     config.user_device.cpu_perf_index),
        min_interval_(seconds(1.0 / config.workload.target_fps)) {}

  // `can_issue` gates the pipeline; `on_frame_emitted` is invoked right
  // after the app's GLES calls for the frame have been made.
  std::function<bool()> can_issue;
  std::function<void()> on_frame_emitted;

  void start() { schedule_attempt(loop_.now()); }

  // Wake the driver after pipeline room opens up.
  void notify_room() {
    if (!waiting_for_room_) return;
    waiting_for_room_ = false;
    schedule_attempt(loop_.now());
  }

  [[nodiscard]] std::uint64_t frames_emitted() const { return frames_; }
  [[nodiscard]] double render_thread_busy_s() const {
    return static_cast<double>(frames_) * cpu_frame_s_;
  }

 private:
  void schedule_attempt(SimTime at) {
    loop_.schedule_at(std::max(at, next_allowed_), [this] { attempt(); });
  }

  void attempt() {
    if (loop_.now().seconds() >= config_.duration_s) return;
    if (!can_issue()) {
      waiting_for_room_ = true;
      return;
    }
    // Render-thread work for this frame, then emission.
    loop_.schedule_after(seconds(cpu_frame_s_), [this] {
      const double now_s = loop_.now().seconds();
      const bool burst = touch_.burst_active(now_s);
      // Scene changes: burst onset or background streaming.
      if (burst && !last_burst_ && rng_.chance(0.7)) {
        app_.trigger_scene_change();
      } else if (rng_.chance(config_.workload.scene_change_rate_hz *
                             cpu_frame_s_ * 4.0)) {
        app_.trigger_scene_change();
      }
      last_burst_ = burst;
      app_.render_frame(now_s, burst);
      ++frames_;
      if (on_frame_emitted) on_frame_emitted();
      next_allowed_ = loop_.now() + min_interval_ - seconds(cpu_frame_s_);
      schedule_attempt(loop_.now());
    });
  }

  EventLoop& loop_;
  apps::GameApp& app_;
  const apps::TouchScript& touch_;
  const SessionConfig& config_;
  Rng rng_;
  double cpu_frame_s_;
  SimTime min_interval_;
  SimTime next_allowed_;
  bool waiting_for_room_ = false;
  bool last_burst_ = false;
  std::uint64_t frames_ = 0;
};

apps::TouchScript make_touch_script(const SessionConfig& config, Rng rng) {
  apps::TouchScriptConfig tc;
  tc.duration_s = config.duration_s;
  tc.burst_rate_hz = config.workload.burst_rate_hz;
  tc.burst_duration_s = config.workload.burst_duration_s;
  tc.base_touch_rate_hz = config.workload.touch_rate_hz;
  tc.burst_touch_rate_hz = config.workload.touch_burst_rate_hz;
  return apps::TouchScript(tc, rng);
}

double cpu_usage_percent(const SessionConfig& config, double render_busy_s,
                         double offload_busy_s) {
  const double duration = config.duration_s;
  const double cores = config.user_device.cpu_cores;
  const double busy_cores = config.workload.cpu_background_cores +
                            render_busy_s / duration +
                            offload_busy_s / duration + 0.35 /* system */;
  return 100.0 * std::min(1.0, busy_cores / cores);
}

void sample_gpu_traces(EventLoop& loop, device::GpuModel& gpu,
                       const SessionConfig& config, SessionResult& result) {
  if (!config.collect_gpu_trace) return;
  const double t = loop.now().seconds();
  gpu.sync();
  result.gpu_frequency_trace.emplace_back(t, gpu.current_frequency_mhz());
  result.gpu_temperature_trace.emplace_back(t, gpu.temperature_c());
  if (t + 2.0 <= config.duration_s) {
    loop.schedule_after(seconds(2.0), [&loop, &gpu, &config, &result] {
      sample_gpu_traces(loop, gpu, config, result);
    });
  }
}

SessionResult run_local(const SessionConfig& config) {
  EventLoop loop;
  Rng rng(config.seed);
  SessionResult result;

  // The "genuine driver": a tiny-content DirectBackend (pixels are not used
  // by any local-session metric; the GPU cost model below provides timing).
  hooking::DynamicLinker linker;
  auto backend =
      std::make_unique<gles::DirectBackend>(64, 48, gles::PresentFn{});
  linker.register_library(
      hooking::LibraryImage::exporting_all("libGLESv2.so", backend.get()));
  auto api = linker.link_gles("libGLESv2.so");

  device::GpuModel gpu(loop, config.user_device.gpu);
  apps::GameApp app(config.workload, *api, 64, 48, rng.fork());
  app.setup();

  const apps::TouchScript touch = make_touch_script(config, rng.fork());
  AppDriver driver(loop, app, touch, config, rng.fork());
  MetricsCollector metrics;

  // Local pipeline: double buffering — up to 2 rendering requests between
  // the application and the GPU; SwapBuffers blocks beyond that.
  int pending = 0;
  std::uint64_t displayed = 0;
  driver.can_issue = [&pending] { return pending < 2; };
  driver.on_frame_emitted = [&] {
    ++pending;
    const SimTime issued = loop.now();
    gpu.submit(config.workload.gpu_workload_pixels,
               [&, issued] {
                 --pending;
                 ++displayed;
                 metrics.on_frame_displayed(loop.now(), loop.now() - issued);
                 driver.notify_room();
               });
  };

  sample_gpu_traces(loop, gpu, config, result);
  driver.start();
  loop.run_until(seconds(config.duration_s));

  result.metrics = metrics.finalize(seconds(config.duration_s));
  // Local response time is the frame interval (Eq. 5 with t_p = 0).
  if (result.metrics.median_fps > 0) {
    result.metrics.avg_response_ms = 1000.0 / result.metrics.median_fps;
  }

  // Energy: CPU + GPU + display. Radios are off (airplane mode, §VII-C).
  energy::EnergyMeter cpu_meter;
  const double usage =
      cpu_usage_percent(config, driver.render_thread_busy_s(), 0.0);
  cpu_meter.add_cpu(seconds(config.duration_s), usage / 100.0,
                    config.user_device.cpu_power);
  result.energy.cpu_j = cpu_meter.joules();
  gpu.sync();
  result.energy.gpu_j = gpu.energy_joules();
  energy::EnergyMeter display_meter;
  display_meter.add_display(seconds(config.duration_s),
                            config.user_device.display_power);
  result.energy.display_j = display_meter.joules();
  result.avg_power_w = result.energy.total() / config.duration_s;
  result.cpu_usage_percent = usage;
  return result;
}

void accumulate_transport(net::ReliableStats& into,
                          const net::ReliableStats& from) {
  into.messages_sent += from.messages_sent;
  into.messages_delivered += from.messages_delivered;
  into.chunks_sent += from.chunks_sent;
  into.chunks_retransmitted += from.chunks_retransmitted;
  into.messages_abandoned += from.messages_abandoned;
  into.payload_bytes_sent += from.payload_bytes_sent;
  into.chunks_dropped_at_source += from.chunks_dropped_at_source;
  into.unreliable_sent += from.unreliable_sent;
  into.unreliable_delivered += from.unreliable_delivered;
  into.rtt_samples += from.rtt_samples;
  into.fec_parity_sent += from.fec_parity_sent;
  into.fec_parity_bytes += from.fec_parity_bytes;
  into.fec_recovered_chunks += from.fec_recovered_chunks;
  into.fec_parity_rejected += from.fec_parity_rejected;
  into.fec_recovered_acks += from.fec_recovered_acks;
  into.path_reroutes += from.path_reroutes;
}

SessionResult run_offload(const SessionConfig& config) {
  check(!config.service_devices.empty(), "offload needs service devices");
  EventLoop loop;
  Rng rng(config.seed);
  SessionResult result;

  // --- network -----------------------------------------------------------
  net::MediumConfig wifi_cfg;
  wifi_cfg.propagation = ms(0.4);
  wifi_cfg.loss_rate = config.wifi_loss_rate;
  net::MediumConfig bt_cfg;
  bt_cfg.propagation = ms(1.2);
  bt_cfg.loss_rate = config.bt_loss_rate;
  net::Medium wifi(loop, wifi_cfg, rng.fork(), "wifi");
  net::Medium bt(loop, bt_cfg, rng.fork(), "bt");

  constexpr net::NodeId kUserNode = 1;

  // Fault injection: one plan drives both media (and the services' own
  // crash-window checks), so a scenario is a single seeded description. The
  // media identify themselves by link id (wifi=0, bt=1) so loss chains and
  // flap windows are per link.
  std::optional<net::FaultPlan> fault_plan;
  if (!config.service_outages.empty() || config.fault_burst.enabled ||
      !config.link_bursts.empty() || !config.link_flaps.empty()) {
    net::FaultPlanConfig fcfg;
    fcfg.seed = config.fault_seed;
    fcfg.burst = config.fault_burst;
    fcfg.link_bursts = config.link_bursts;
    for (const SessionConfig::ServiceOutageSpec& spec :
         config.service_outages) {
      check(spec.device_index <
                config.service_devices.size() + config.hot_joins.size(),
            "outage names a device the session does not have");
      net::OutageWindow window;
      window.node = static_cast<net::NodeId>(100 + spec.device_index);
      window.start = seconds(spec.start_s);
      window.end = seconds(spec.end_s);
      fcfg.outages.push_back(window);
    }
    for (const SessionConfig::LinkFlapSpec& spec : config.link_flaps) {
      net::LinkOutageWindow window;
      window.link = spec.link;
      window.node = kUserNode;
      window.start = seconds(spec.start_s);
      window.end = seconds(spec.end_s);
      fcfg.link_outages.push_back(window);
    }
    fault_plan.emplace(std::move(fcfg));
    wifi.set_fault_plan(&*fault_plan, /*link=*/0);
    bt.set_fault_plan(&*fault_plan, /*link=*/1);
  }

  // --- tracing -----------------------------------------------------------
  // One tracer serves every component; spans interleave on per-node tracks.
  std::optional<runtime::Tracer> internal_tracer;
  runtime::Tracer* tracer = config.tracer;
  if (tracer == nullptr && config.collect_stage_breakdown) {
    internal_tracer.emplace();
    tracer = &*internal_tracer;
  }

  net::RadioInterface user_wifi(loop, net::wifi_radio_config(), "user-wifi");
  net::RadioInterface user_bt(loop, net::bluetooth_radio_config(), "user-bt");

  net::ReliableEndpoint user_endpoint(loop, kUserNode, config.transport);
  user_endpoint.bind(wifi, &user_wifi);
  user_endpoint.bind(bt, &user_bt);
  if (tracer != nullptr) {
    tracer->set_track_name(kUserNode, "user");
    user_endpoint.set_tracer(tracer);
  }

  // --- service devices ------------------------------------------------------
  // Hot-join devices are fully built (runtime, radios, media binding) from
  // the start — they are powered-on peers — but stay outside the multicast
  // group and the dispatcher until their join fires below.
  std::vector<device::DeviceProfile> service_profiles = config.service_devices;
  const std::size_t initial_count = service_profiles.size();
  for (const SessionConfig::HotJoinSpec& spec : config.hot_joins) {
    service_profiles.push_back(spec.profile);
  }
  std::vector<std::unique_ptr<core::ServiceRuntime>> services;
  std::vector<std::unique_ptr<net::RadioInterface>> service_radios;
  std::vector<core::ServiceDeviceInfo> device_infos;
  std::vector<core::ServiceDeviceInfo> hot_join_infos;
  std::vector<net::ReliableEndpoint*> switched_endpoints{&user_endpoint};
  for (std::size_t i = 0; i < service_profiles.size(); ++i) {
    device::DeviceProfile profile = service_profiles[i];
    // Eq. 4's c^j — fillrate derated to streamed-request throughput.
    profile.gpu.fillrate_pps *= profile.gpu_request_efficiency;
    const net::NodeId node = static_cast<net::NodeId>(100 + i);
    core::ServiceRuntimeConfig scfg = config.service;
    scfg.tracer = tracer;
    auto service =
        std::make_unique<core::ServiceRuntime>(loop, node, profile, scfg);
    if (fault_plan.has_value()) service->set_fault_plan(&*fault_plan);
    if (tracer != nullptr) {
      tracer->set_track_name(node, profile.name);
      service->endpoint().set_tracer(tracer);
    }
    service_radios.push_back(std::make_unique<net::RadioInterface>(
        loop, net::wifi_radio_config(), profile.name + "-wifi"));
    service_radios.push_back(std::make_unique<net::RadioInterface>(
        loop, net::bluetooth_radio_config(), profile.name + "-bt"));
    service->endpoint().bind(wifi, (service_radios.end() - 2)->get());
    service->endpoint().bind(bt, service_radios.back().get());
    const core::ServiceDeviceInfo info{node, profile.name,
                                       profile.gpu.fillrate_pps};
    if (i < initial_count) {
      wifi.join_group(config.gbooster.state_group, node);
      bt.join_group(config.gbooster.state_group, node);
      device_infos.push_back(info);
    } else {
      hot_join_infos.push_back(info);
    }
    switched_endpoints.push_back(&service->endpoint());
    services.push_back(std::move(service));
  }

  // --- GBooster -----------------------------------------------------------
  core::GBoosterConfig gcfg = config.gbooster;
  gcfg.tracer = tracer;
  gcfg.service_encode_mpps = config.service_devices.front().turbo_encode_mpps;
  gcfg.local_capability_pps = config.user_device.gpu.fillrate_pps;
  gcfg.link_bandwidth_bps = [&user_endpoint, &wifi] {
    return user_endpoint.route() == &wifi ? net::wifi_radio_config().bandwidth_bps
                                          : net::bluetooth_radio_config().bandwidth_bps;
  };
  core::GBoosterRuntime gbooster(loop, gcfg, user_endpoint, device_infos);
  user_endpoint.set_handler(
      [&gbooster](net::NodeId src, net::NodeId stream, Bytes message) {
        gbooster.on_message(src, stream, std::move(message));
      });
  gbooster.set_workload_override(
      [&config] { return config.workload.gpu_workload_pixels; });

  // Hot-joins: enter the multicast group, then hand the device to the
  // runtime (which snapshots it and opens it to dispatch).
  for (std::size_t h = 0; h < config.hot_joins.size(); ++h) {
    const core::ServiceDeviceInfo info = hot_join_infos[h];
    loop.schedule_at(seconds(config.hot_joins[h].at_s),
                     [&wifi, &bt, &gbooster, &config, info] {
                       wifi.join_group(config.gbooster.state_group, info.node);
                       bt.join_group(config.gbooster.state_group, info.node);
                       gbooster.add_service_device(info);
                     });
  }

  core::SwitcherConfig swcfg = config.switcher;
  swcfg.tracer = tracer;
  core::InterfaceSwitcher switcher(loop, swcfg, switched_endpoints, wifi,
                                   user_wifi, bt, user_bt);

  // --- application, hooked through the linker --------------------------------
  hooking::DynamicLinker linker;
  auto genuine =
      std::make_unique<gles::DirectBackend>(64, 48, gles::PresentFn{});
  linker.register_library(
      hooking::LibraryImage::exporting_all("libGLESv2.so", genuine.get()));
  gbooster.install(linker);
  auto api = linker.link_gles("libGLESv2.so");

  apps::GameApp app(config.workload, *api, config.gbooster.nominal_width,
                    config.gbooster.nominal_height, rng.fork());
  app.setup();

  const apps::TouchScript touch = make_touch_script(config, rng.fork());
  AppDriver driver(loop, app, touch, config, rng.fork());
  MetricsCollector metrics;

  driver.can_issue = [&gbooster] { return gbooster.can_issue_frame(); };
  gbooster.set_display_handler(
      [&](std::uint64_t sequence, SimTime latency, const Image& frame) {
        (void)sequence;
        (void)frame;
        metrics.on_frame_displayed(loop.now(), latency);
        driver.notify_room();
      });

  // --- traffic observation (100 ms cadence, §V-B) -----------------------------
  std::uint64_t last_tx = 0;
  std::uint64_t last_rx = 0;
  std::uint64_t last_misses = 0;
  std::uint64_t total_traffic_bytes = 0;
  const double interval_s = config.switcher.observe_interval.seconds();
  std::function<void()> observe = [&] {
    const double now_s = loop.now().seconds();
    const auto& stats = gbooster.stats();
    predict::TrafficSample sample;
    sample.traffic_bytes =
        static_cast<double>((stats.bytes_sent - last_tx) +
                            (stats.bytes_received - last_rx));
    last_tx = stats.bytes_sent;
    last_rx = stats.bytes_received;
    total_traffic_bytes += static_cast<std::uint64_t>(sample.traffic_bytes);
    sample.touch_rate =
        touch.touches_in(now_s - interval_s, now_s) / interval_s;
    const wire::FrameProfile& profile = gbooster.recorder().last_frame_profile();
    sample.command_count = static_cast<double>(profile.command_count);
    sample.texture_count = static_cast<double>(profile.texture_bind_count);
    const std::uint64_t misses = stats.render_cache.misses;
    sample.command_diff = static_cast<double>(misses - last_misses);
    last_misses = misses;

    switcher.observe_interval(sample);
    if (config.switcher.policy == core::SwitchPolicy::kMultipath) {
      // The governor's proactive bitrate ladder prices its rungs against the
      // predicted aggregate deliverable capacity of the striped paths.
      gbooster.note_capacity_forecast(
          switcher.predicted_aggregate_capacity_bps());
    }
    if (config.collect_traffic_trace) {
      result.traffic_trace.push_back(sample);
    }
    if (now_s + interval_s <= config.duration_s) {
      loop.schedule_after(config.switcher.observe_interval, observe);
    }
  };
  loop.schedule_after(config.switcher.observe_interval, observe);

  driver.start();
  loop.run_until(seconds(config.duration_s));

  result.metrics = metrics.finalize(seconds(config.duration_s));
  if (tracer != nullptr && config.collect_stage_breakdown) {
    fill_stage_breakdown(*tracer, result.metrics);
  }
  // Eq. 5: response = frame interval + offload intermediate time t_p.
  // (avg_issue_to_display_ms keeps the measured mean the stage spans sum to.)
  const auto& gstats = gbooster.stats();
  if (result.metrics.median_fps > 0 && gstats.frames_displayed > 0) {
    result.metrics.avg_response_ms =
        1000.0 / result.metrics.median_fps +
        gstats.t_p_ms_sum / static_cast<double>(gstats.frames_displayed);
  }

  // --- energy ------------------------------------------------------------
  const double offload_cpu_s = gstats.serialize_seconds + gstats.decode_seconds;
  const double usage = cpu_usage_percent(
      config, driver.render_thread_busy_s(), offload_cpu_s);
  energy::EnergyMeter cpu_meter;
  cpu_meter.add_cpu(seconds(config.duration_s), usage / 100.0,
                    config.user_device.cpu_power);
  result.energy.cpu_j = cpu_meter.joules();
  // The local GPU idles except for fallback frames rendered during
  // all-devices-down windows.
  energy::EnergyMeter gpu_meter;
  const double gpu_util =
      std::min(1.0, gstats.local_render_seconds / config.duration_s);
  gpu_meter.add_gpu(seconds(config.duration_s), gpu_util, 1.0,
                    config.user_device.gpu.power);
  result.energy.gpu_j = gpu_meter.joules();
  energy::EnergyMeter display_meter;
  display_meter.add_display(seconds(config.duration_s),
                            config.user_device.display_power);
  result.energy.display_j = display_meter.joules();
  result.energy.wifi_j = user_wifi.energy_joules();
  result.energy.bt_j = user_bt.energy_joules();
  result.avg_power_w = result.energy.total() / config.duration_s;

  result.avg_traffic_mbps = static_cast<double>(total_traffic_bytes) * 8.0 /
                            config.duration_s / 1e6;
  result.cpu_usage_percent = usage;
  result.memory_overhead_bytes = gbooster.memory_overhead_bytes();
  result.switcher = switcher.stats();
  result.gbooster = gstats;
  if (fault_plan.has_value()) result.faults = fault_plan->stats();
  result.transport = user_endpoint.stats();
  result.user_path_wifi = user_endpoint.path_stats(0);
  result.user_path_bt = user_endpoint.path_stats(1);
  for (const auto& service : services) {
    result.requests_lost_to_faults += service->stats().requests_lost_to_faults;
    result.requests_shed_admission +=
        service->stats().requests_shed_admission;
    accumulate_transport(result.service_transport,
                         service->endpoint().stats());
  }
  return result;
}

}  // namespace

SessionResult run_session(const SessionConfig& config) {
  return config.service_devices.empty() ? run_local(config)
                                        : run_offload(config);
}

void export_transport_metrics(runtime::MetricsRegistry& registry,
                              const SessionResult& result) {
  // Downlink resilience counters live on the user endpoint (it reconstructs
  // and reroutes); parity overhead is spent by the service endpoints.
  registry.counter("transport_fec_recovered_chunks")
      .add(result.transport.fec_recovered_chunks);
  registry.counter("transport_fec_parity_rejected")
      .add(result.transport.fec_parity_rejected);
  registry.counter("transport_parity_overhead_bytes")
      .add(result.service_transport.fec_parity_bytes);
  registry.counter("transport_fec_parity_sent")
      .add(result.service_transport.fec_parity_sent);
  registry.counter("transport_path_reroutes")
      .add(result.transport.path_reroutes +
           result.service_transport.path_reroutes);
  registry.counter("transport_chunks_retransmitted")
      .add(result.transport.chunks_retransmitted +
           result.service_transport.chunks_retransmitted);
  registry.counter("transport_messages_abandoned")
      .add(result.transport.messages_abandoned +
           result.service_transport.messages_abandoned);
  registry.counter("transport_rtt_samples").add(result.transport.rtt_samples);
  registry.gauge("path_wifi_weight").set(result.user_path_wifi.weight);
  registry.gauge("path_bt_weight").set(result.user_path_bt.weight);
  registry.gauge("path_wifi_srtt_ms").set(result.user_path_wifi.srtt_ms);
  registry.gauge("path_bt_srtt_ms").set(result.user_path_bt.srtt_ms);
  registry.gauge("path_wifi_bytes_sent")
      .set(static_cast<double>(result.user_path_wifi.bytes_sent));
  registry.gauge("path_bt_bytes_sent")
      .set(static_cast<double>(result.user_path_bt.bytes_sent));
}

}  // namespace gb::sim
