// End-to-end gameplay session simulator — the harness behind Figs. 5/6/7 and
// Tables III and the §VII-G overhead numbers.
//
// A session wires up one user device running a synthetic game (emitting a
// real GLES command stream), optionally GBooster with one or more service
// devices on simulated WiFi/Bluetooth media, and plays a scripted-touch
// gameplay trace for a configurable duration on the virtual clock.
//
// Fidelity modes: GPU timing, radios and energy are always simulated in
// full. Frame *content* (real rasterization + Turbo encoding, which sets the
// downlink traffic) is produced at a reduced resolution and sampled every
// Nth frame, then scaled to the nominal stream resolution — see DESIGN.md §2.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "apps/touch.h"
#include "apps/workload.h"
#include "core/gbooster.h"
#include "core/interface_switcher.h"
#include "core/service_runtime.h"
#include "device/device_profiles.h"
#include "net/fault_plan.h"
#include "net/reliable.h"
#include "predict/traffic_predictor.h"
#include "runtime/trace.h"
#include "sim/metrics.h"

namespace gb::runtime {
class MetricsRegistry;
}

namespace gb::sim {

struct SessionConfig {
  apps::WorkloadSpec workload;
  device::DeviceProfile user_device;
  // Empty => local execution (no GBooster).
  std::vector<device::DeviceProfile> service_devices;
  double duration_s = 300.0;
  std::uint64_t seed = 42;

  core::GBoosterConfig gbooster;
  core::SwitcherConfig switcher;
  core::ServiceRuntimeConfig service;

  double wifi_loss_rate = 0.002;
  double bt_loss_rate = 0.005;

  // User-endpoint transport configuration (service endpoints read
  // service.transport). Benches flip adaptive_rto off on both for the
  // fixed-timer baseline.
  net::ReliableConfig transport;

  // --- fault injection -----------------------------------------------------
  // Crash/suspend a service device for [start_s, end_s): it neither sends
  // nor receives, and GPU work completing inside the window is lost.
  struct ServiceOutageSpec {
    std::size_t device_index = 0;
    double start_s = 0.0;
    double end_s = 0.0;
  };
  std::vector<ServiceOutageSpec> service_outages;
  // Hot-join (DESIGN.md §10): a service device that is powered on and bound
  // to the media from session start but only joins the offload session —
  // state multicast group, snapshot resync, dispatcher — at `at_s`. Its
  // device index follows the initial devices, in declaration order.
  struct HotJoinSpec {
    device::DeviceProfile profile;
    double at_s = 0.0;
  };
  std::vector<HotJoinSpec> hot_joins;
  // Gilbert–Elliott burst loss layered on both media (off by default). Each
  // link always evolves its own independently seeded chain — WiFi
  // interference and Bluetooth contention are unrelated processes.
  net::GilbertElliottConfig fault_burst;
  // Per-link burst overrides (wifi=0, bt=1): link i uses link_bursts[i]
  // when present, `fault_burst` otherwise.
  std::vector<net::GilbertElliottConfig> link_bursts;
  // Radio flap on the user device: its `link` (wifi=0, bt=1) is dead in
  // [start_s, end_s) while the node and its other link stay up — the
  // single-path outage a multipath transport should survive by rerouting.
  struct LinkFlapSpec {
    int link = 0;
    double start_s = 0.0;
    double end_s = 0.0;
  };
  std::vector<LinkFlapSpec> link_flaps;
  std::uint64_t fault_seed = 0x5eedfa17;

  // Records a per-100ms traffic trace for the §V-B prediction study.
  bool collect_traffic_trace = false;
  // Records the per-2s GPU frequency/temperature trace (Fig. 1).
  bool collect_gpu_trace = false;

  // --- pipeline tracing (DESIGN.md §9) -------------------------------------
  // Optional tracer shared by the user runtime, transports, service devices
  // and the interface switcher; null leaves tracing off. Must outlive
  // run_session (export the Chrome JSON from it afterwards).
  runtime::Tracer* tracer = nullptr;
  // Fills SessionMetrics::stage_breakdown from the trace. When `tracer` is
  // null, an internal tracer is used for the duration of the run.
  bool collect_stage_breakdown = false;
};

struct EnergyBreakdown {
  double cpu_j = 0.0;
  double gpu_j = 0.0;
  double display_j = 0.0;
  double wifi_j = 0.0;
  double bt_j = 0.0;

  [[nodiscard]] double total() const {
    return cpu_j + gpu_j + display_j + wifi_j + bt_j;
  }
};

struct SessionResult {
  SessionMetrics metrics;
  EnergyBreakdown energy;
  double avg_power_w = 0.0;
  double avg_traffic_mbps = 0.0;  // user-device tx+rx at payload level
  double cpu_usage_percent = 0.0;  // §VII-G
  std::size_t memory_overhead_bytes = 0;

  core::SwitcherStats switcher;
  core::GBoosterStats gbooster;
  net::FaultPlanStats faults;
  // User-endpoint transport counters: downlink FEC recoveries, reroutes,
  // RTT samples (DESIGN.md §13).
  net::ReliableStats transport;
  // Summed over service endpoints: uplink counters plus the parity overhead
  // the services spent protecting the downlink.
  net::ReliableStats service_transport;
  // Per-path user-endpoint gauges, bind order {wifi, bt}.
  net::ReliableEndpoint::PathStats user_path_wifi;
  net::ReliableEndpoint::PathStats user_path_bt;
  // Summed over service devices.
  std::uint64_t requests_lost_to_faults = 0;
  std::uint64_t requests_shed_admission = 0;

  std::vector<predict::TrafficSample> traffic_trace;
  // (seconds, MHz) / (seconds, Celsius), sampled every 2 s.
  std::vector<std::pair<double, double>> gpu_frequency_trace;
  std::vector<std::pair<double, double>> gpu_temperature_trace;
};

// Runs a session; dispatches on service_devices.empty().
SessionResult run_session(const SessionConfig& config);

// Publishes the session's transport counters and per-path gauges (DESIGN.md
// §13) into a metrics registry under the `transport_` / `path_` prefixes:
// FEC recoveries, parity overhead bytes, reroutes, retransmissions as
// counters; per-path striping weight and mean SRTT as gauges. Benches call
// this to fold transport health into their exported counter sets.
void export_transport_metrics(runtime::MetricsRegistry& registry,
                              const SessionResult& result);

}  // namespace gb::sim
