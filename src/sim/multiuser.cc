#include "sim/multiuser.h"

#include <algorithm>
#include <memory>
#include <set>

#include "apps/game_app.h"
#include "apps/touch.h"
#include "common/error.h"
#include "core/gbooster.h"
#include "core/service_runtime.h"
#include "gles/direct_backend.h"
#include "hooking/dynamic_linker.h"
#include "net/medium.h"
#include "net/radio.h"
#include "net/reliable.h"
#include "runtime/event_loop.h"
#include "runtime/percentile.h"

namespace gb::sim {
namespace {

// One user device's full stack: app, wrapper, runtime, pacing state.
struct User {
  std::unique_ptr<net::RadioInterface> radio;
  std::unique_ptr<net::ReliableEndpoint> endpoint;
  std::unique_ptr<core::GBoosterRuntime> gbooster;
  std::unique_ptr<hooking::DynamicLinker> linker;
  std::unique_ptr<gles::DirectBackend> genuine;
  std::unique_ptr<gles::GlesApi> api;
  std::unique_ptr<apps::GameApp> app;
  std::unique_ptr<apps::TouchScript> touch;
  MetricsCollector metrics;
  std::vector<double> latencies_ms;
  std::uint64_t displayed = 0;
  double cpu_frame_s = 0.016;
  SimTime next_allowed;
  bool waiting = false;
  std::uint64_t frames = 0;
};

}  // namespace

MultiUserResult run_multiuser_session(const MultiUserConfig& config) {
  check(!config.users.empty(), "need at least one user");
  EventLoop loop;
  Rng rng(config.seed);

  net::MediumConfig wifi_config;
  wifi_config.loss_rate = 0.002;
  net::Medium wifi(loop, wifi_config, rng.fork(), "wifi");

  // The shared service device.
  core::ServiceRuntimeConfig service_config;
  service_config.render_width = config.render_width;
  service_config.render_height = config.render_height;
  service_config.content_sample_every = config.content_sample_every;
  service_config.admission_queue_cap = config.admission_queue_cap;
  std::shared_ptr<compress::SharedStoreRegistry> shared_store =
      config.shared_store;
  if (config.shared_dedup) {
    if (shared_store == nullptr) {
      shared_store = std::make_shared<compress::SharedStoreRegistry>();
    }
    service_config.shared_store = shared_store;
  }
  device::DeviceProfile service_profile = config.service_device;
  service_profile.gpu.fillrate_pps *= service_profile.gpu_request_efficiency;
  auto service = std::make_unique<core::ServiceRuntime>(
      loop, /*node=*/100, service_profile, service_config);
  service->endpoint().bind(wifi, nullptr);

  std::vector<std::unique_ptr<User>> users;
  for (std::size_t u = 0; u < config.users.size(); ++u) {
    const MultiUserParticipant& participant = config.users[u];
    auto user = std::make_unique<User>();
    const net::NodeId node = static_cast<net::NodeId>(1 + u);
    user->radio = std::make_unique<net::RadioInterface>(
        loop, net::wifi_radio_config(), "user" + std::to_string(u) + "-wifi");
    user->endpoint = std::make_unique<net::ReliableEndpoint>(loop, node);
    user->endpoint->bind(wifi, user->radio.get());

    core::GBoosterConfig gb_config;
    gb_config.max_pending_requests = config.max_pending;
    gb_config.request_priority = participant.priority;
    gb_config.state_group = 0xff00 + static_cast<net::NodeId>(u);
    gb_config.qos = config.qos;
    if (config.shared_dedup) {
      gb_config.shared_dedup = true;
      gb_config.app_id = participant.app_id;
      gb_config.join_delay = seconds(participant.join_delay_s);
    }
    user->gbooster = std::make_unique<core::GBoosterRuntime>(
        loop, gb_config, *user->endpoint,
        std::vector<core::ServiceDeviceInfo>{
            {100, service_profile.name, service_profile.gpu.fillrate_pps}});
    core::GBoosterRuntime* gbooster = user->gbooster.get();
    user->endpoint->set_handler(
        [gbooster](net::NodeId src, net::NodeId stream, Bytes message) {
          gbooster->on_message(src, stream, std::move(message));
        });
    const double workload = participant.workload.gpu_workload_pixels;
    user->gbooster->set_workload_override([workload] { return workload; });

    user->linker = std::make_unique<hooking::DynamicLinker>();
    user->genuine =
        std::make_unique<gles::DirectBackend>(64, 48, gles::PresentFn{});
    user->linker->register_library(hooking::LibraryImage::exporting_all(
        "libGLESv2.so", user->genuine.get()));
    user->gbooster->install(*user->linker);
    user->api = user->linker->link_gles("libGLESv2.so");

    user->app = std::make_unique<apps::GameApp>(
        participant.workload, *user->api, 600, 480, rng.fork());
    user->app->setup();
    apps::TouchScriptConfig touch_config;
    touch_config.duration_s = config.duration_s;
    touch_config.burst_rate_hz = participant.workload.burst_rate_hz;
    touch_config.burst_duration_s = participant.workload.burst_duration_s;
    user->touch =
        std::make_unique<apps::TouchScript>(touch_config, rng.fork());
    user->cpu_frame_s = participant.workload.cpu_frame_seconds /
                        participant.phone.cpu_perf_index;
    users.push_back(std::move(user));
  }

  // App pacing loops (same discipline as the single-user simulator).
  std::vector<std::function<void()>> attempts(users.size());
  for (std::size_t u = 0; u < users.size(); ++u) {
    User* user = users[u].get();
    const apps::WorkloadSpec& spec = config.users[u].workload;
    const SimTime min_interval = seconds(1.0 / spec.target_fps);
    attempts[u] = [&, user, u, min_interval] {
      if (loop.now().seconds() >= config.duration_s) return;
      if (!user->gbooster->can_issue_frame()) {
        user->waiting = true;
        return;
      }
      loop.schedule_after(seconds(user->cpu_frame_s), [&, user, u,
                                                       min_interval] {
        const double now_s = loop.now().seconds();
        user->app->render_frame(now_s, user->touch->burst_active(now_s));
        user->frames++;
        const SimTime next =
            std::max(loop.now(), user->next_allowed + min_interval);
        user->next_allowed = next;
        loop.schedule_at(next, [&, u] { attempts[u](); });
      });
    };
    user->gbooster->set_display_handler(
        [&, user, u](std::uint64_t, SimTime latency, const Image&) {
          user->metrics.on_frame_displayed(loop.now(), latency);
          user->latencies_ms.push_back(latency.ms());
          user->displayed++;
          if (user->waiting) {
            user->waiting = false;
            attempts[u]();
          }
        });
  }
  for (std::size_t u = 0; u < users.size(); ++u) attempts[u]();

  loop.run_until(seconds(config.duration_s));

  MultiUserResult result;
  for (std::size_t u = 0; u < users.size(); ++u) {
    const auto& user = users[u];
    result.per_user.push_back(
        user->metrics.finalize(seconds(config.duration_s)));
    result.service_sheds_per_user.push_back(
        service->sheds_for_user(static_cast<net::NodeId>(1 + u)));
    const core::GBoosterStats& gstats = user->gbooster->stats();
    result.governor_sheds_per_user.push_back(gstats.frames_shed_window +
                                             gstats.frames_shed_deadline +
                                             gstats.frames_shed_void);
    result.bytes_sent_per_user.push_back(gstats.bytes_sent);
    result.shared_hits_per_user.push_back(gstats.render_cache.shared_hits +
                                          gstats.state_cache.shared_hits);
    double mean = 0.0;
    double p95 = 0.0;
    if (!user->latencies_ms.empty()) {
      for (const double v : user->latencies_ms) mean += v;
      mean /= static_cast<double>(user->latencies_ms.size());
      std::vector<double> sorted = user->latencies_ms;
      std::sort(sorted.begin(), sorted.end());
      p95 = runtime::percentile_sorted(sorted, 0.95);
    }
    result.mean_latency_ms.push_back(mean);
    result.p95_latency_ms.push_back(p95);
  }
  service->gpu().sync();
  result.service_gpu_busy_fraction =
      service->gpu().busy_seconds() / config.duration_s;
  if (shared_store != nullptr) {
    std::set<std::uint64_t> app_ids;
    for (const MultiUserParticipant& participant : config.users) {
      app_ids.insert(participant.app_id);
    }
    for (const std::uint64_t app_id : app_ids) {
      result.shared_store_resident_bytes +=
          shared_store->store_for(app_id).resident_bytes();
    }
  }
  return result;
}

}  // namespace gb::sim
