// Energy-aware streaming walk-through (paper §V).
//
// Shows the Bluetooth/WiFi interface switcher at work during a role-playing
// session: traffic mostly fits Bluetooth, interaction bursts push demand
// over the ceiling, and the ARMAX forecaster wakes WiFi ahead of time. The
// example prints the interface timeline and the resulting energy breakdown
// against an always-WiFi baseline.
//
// Build & run:  ./build/examples/energy_aware
#include <cstdio>

#include "apps/workload.h"
#include "core/interface_switcher.h"
#include "device/device_profiles.h"
#include "sim/session.h"

namespace {

gb::sim::SessionConfig base_config(gb::core::SwitchPolicy policy) {
  using namespace gb;
  sim::SessionConfig config;
  config.workload = apps::g3_star_wars_kotor();
  config.user_device = device::nexus5();
  config.service_devices = {device::nvidia_shield()};
  config.duration_s = 120.0;
  config.seed = 4242;
  config.service.render_width = 96;
  config.service.render_height = 72;
  config.service.content_sample_every = 8;
  config.service.codec.quality = 70;
  config.switcher.policy = policy;
  return config;
}

void print_energy(const char* label, const gb::sim::SessionResult& r) {
  std::printf("%-22s cpu %5.1f J | gpu %5.1f J | display %5.1f J | "
              "wifi %5.1f J | bt %4.1f J | total %6.1f J\n",
              label, r.energy.cpu_j, r.energy.gpu_j, r.energy.display_j,
              r.energy.wifi_j, r.energy.bt_j, r.energy.total());
}

}  // namespace

int main() {
  using namespace gb;

  std::printf("G3 (role-playing) on a Nexus 5, 120 s, one Nvidia Shield\n\n");

  const sim::SessionResult local = sim::run_session([] {
    auto c = base_config(core::SwitchPolicy::kPredictive);
    c.service_devices.clear();
    return c;
  }());
  const sim::SessionResult predictive =
      sim::run_session(base_config(core::SwitchPolicy::kPredictive));
  const sim::SessionResult always_wifi =
      sim::run_session(base_config(core::SwitchPolicy::kAlwaysWifi));
  const sim::SessionResult reactive =
      sim::run_session(base_config(core::SwitchPolicy::kReactive));

  print_energy("local execution", local);
  print_energy("GBooster (predictive)", predictive);
  print_energy("GBooster (always-WiFi)", always_wifi);
  print_energy("GBooster (reactive)", reactive);

  std::printf("\ninterface timeline (predictive): %.1f s on Bluetooth, "
              "%.1f s on WiFi, %llu upgrades, %llu downgrades\n",
              predictive.switcher.seconds_on_bt,
              predictive.switcher.seconds_on_wifi,
              static_cast<unsigned long long>(
                  predictive.switcher.upgrades_to_wifi),
              static_cast<unsigned long long>(
                  predictive.switcher.downgrades_to_bt));
  std::printf("uncovered demand intervals  predictive: %llu   reactive: %llu\n",
              static_cast<unsigned long long>(
                  predictive.switcher.uncovered_demand_intervals),
              static_cast<unsigned long long>(
                  reactive.switcher.uncovered_demand_intervals));
  std::printf("\nnormalized energy: predictive %.0f%%, always-WiFi %.0f%% of "
              "local (Fig. 6a vs 6b)\n",
              100.0 * predictive.energy.total() / local.energy.total(),
              100.0 * always_wifi.energy.total() / local.energy.total());
  return 0;
}
