// Pipeline tracing: run an offload session with the tracer attached, print
// the per-stage latency breakdown, and export a Chrome trace_event JSON
// timeline for chrome://tracing or https://ui.perfetto.dev.
//
// Build & run:  ./build/examples/trace_pipeline --trace out.json
//
// Every displayed frame appears as a chain of spans across the device
// tracks: serialize (phone CPU) -> uplink (WiFi/BT) -> remote_exec (service
// GPU) -> turbo_encode -> downlink -> decode -> present. Instant events mark
// dispatch decisions, retransmits, abandons, cache-mirror resets, breaker
// transitions, and interface switches.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "apps/workload.h"
#include "device/device_profiles.h"
#include "runtime/trace.h"
#include "sim/session.h"

int main(int argc, char** argv) {
  using namespace gb;

  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--trace out.json]\n", argv[0]);
      return 2;
    }
  }

  // The §VII-A setup: GTA San Andreas on a Nexus 5, offloaded to a Shield.
  sim::SessionConfig config;
  config.workload = apps::g1_gta_san_andreas();
  config.user_device = device::nexus5();
  config.service_devices.push_back(device::nvidia_shield());
  config.duration_s = 10.0;
  config.seed = 2017;
  config.service.render_width = 120;
  config.service.render_height = 96;

  // An external tracer outlives the session, so we can export the timeline
  // after the run. (`collect_stage_breakdown` alone would use a private
  // tracer that is discarded once the breakdown is filled.)
  runtime::Tracer tracer;
  config.tracer = &tracer;
  config.collect_stage_breakdown = true;

  std::printf("running %.0fs offload session with tracing on...\n",
              config.duration_s);
  const sim::SessionResult result = sim::run_session(config);
  const sim::SessionMetrics& m = result.metrics;

  std::printf("\n%llu frames displayed, median %.0f FPS, "
              "issue-to-display %.1f ms mean\n\n",
              static_cast<unsigned long long>(m.frames_displayed),
              m.median_fps, m.avg_issue_to_display_ms);
  std::printf("  %-14s %8s %8s %8s %8s\n", "stage", "frames", "mean ms",
              "p50 ms", "p99 ms");
  for (std::size_t i = 0; i < runtime::kStageCount; ++i) {
    const sim::StageStats& stage = m.stage_breakdown[i];
    if (stage.count == 0) continue;
    std::printf("  %-14s %8llu %8.2f %8.2f %8.2f\n",
                runtime::stage_name(static_cast<runtime::Stage>(i)),
                static_cast<unsigned long long>(stage.count), stage.mean_ms,
                stage.p50_ms, stage.p99_ms);
  }
  std::printf("  (stage means sum to the issue-to-display mean)\n");

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_path.c_str());
      return 1;
    }
    tracer.write_chrome_json(out);
    std::printf("\nwrote %zu spans + %zu instants to %s\n"
                "open it in chrome://tracing or https://ui.perfetto.dev\n",
                tracer.spans().size(), tracer.instants().size(),
                trace_path.c_str());
  }
  return m.frames_displayed > 0 ? 0 : 1;
}
