// Multi-device offloading walk-through (paper §VI / Fig. 7).
//
// Runs the same action game against 0..4 service devices and prints the
// frame-rate curve plus where each rendering request was dispatched — the
// Eq. 4 scheduler balancing queued workload, capability, and latency.
//
// Build & run:  ./build/examples/multi_device
#include <cstdio>

#include "apps/workload.h"
#include "device/device_profiles.h"
#include "sim/session.h"

int main() {
  using namespace gb;

  std::printf("G1 (GTA San Andreas class) on a Nexus 5, 60-second sessions\n");
  std::printf("%-26s %-12s %-12s %-14s\n", "service devices", "median FPS",
              "response ms", "avg pending");
  std::printf("--------------------------------------------------------------\n");

  // A heterogeneous fleet: console, desktop, TV box, laptop — Eq. 4 weighs
  // their capabilities automatically.
  const std::vector<device::DeviceProfile> fleet = {
      device::nvidia_shield(), device::dell_optiplex_gtx750ti(),
      device::minix_neo_u1(), device::dell_m4600()};

  for (std::size_t count = 0; count <= fleet.size(); ++count) {
    sim::SessionConfig config;
    config.workload = apps::g1_gta_san_andreas();
    config.user_device = device::nexus5();
    config.duration_s = 60.0;
    config.seed = 99;
    config.service.render_width = 96;
    config.service.render_height = 72;
    config.service.content_sample_every = 8;
    for (std::size_t i = 0; i < count; ++i) {
      config.service_devices.push_back(fleet[i]);
    }
    const sim::SessionResult result = sim::run_session(config);

    std::string label = count == 0 ? "none (local)" : "";
    for (std::size_t i = 0; i < count; ++i) {
      label += (i > 0 ? "+" : "");
      label += fleet[i].name.substr(0, 9);
    }
    const auto& g = result.gbooster;
    const double pending =
        g.pending_depth_samples > 0
            ? static_cast<double>(g.pending_depth_sum) / g.pending_depth_samples
            : 0.0;
    std::printf("%-26s %-12.0f %-12.1f %-14.2f\n", label.c_str(),
                result.metrics.median_fps, result.metrics.avg_response_ms,
                pending);
  }

  std::printf(
      "\nThe curve saturates once the request buffer (≈3 deep, because the\n"
      "game's render thread caps generation) stops hiding per-device render\n"
      "time — exactly the Fig. 7 plateau.\n");
  return 0;
}
