// Transparent interception walk-through (paper §IV-A).
//
// The same application binary is run three times, each resolving OpenGL ES a
// different way — direct linking, eglGetProcAddress, and dlopen/dlsym — and
// in every case GBooster's preloaded wrapper ends up receiving the calls
// while the app remains byte-for-byte unmodified.
//
// Build & run:  ./build/examples/transparent_hooking
#include <cstdio>
#include <memory>

#include "gles/direct_backend.h"
#include "hooking/dynamic_linker.h"
#include "wire/recorder.h"

namespace {

using namespace gb;

// "The application": clears the screen through whatever entry points its
// loader handed it. It has no idea who implements them.
void run_app(gles::GlesApi& gl) {
  gl.glClearColor(0.1f, 0.6f, 0.9f, 1.0f);
  gl.glClear(gles::GL_COLOR_BUFFER_BIT);
  gl.eglSwapBuffers();
}

}  // namespace

int main() {
  // The genuine Android driver and GBooster's wrapper library.
  auto genuine =
      std::make_unique<gles::DirectBackend>(64, 48, gles::PresentFn{});
  int frames_intercepted = 0;
  auto wrapper = std::make_unique<wire::CommandRecorder>(
      64, 48, [&frames_intercepted](wire::FrameCommands frame) {
        ++frames_intercepted;
        std::printf("  wrapper captured frame with %zu serialized commands\n",
                    frame.records.size());
        return true;
      });

  hooking::DynamicLinker linker;
  linker.register_library(
      hooking::LibraryImage::exporting_all("libGLESv2.so", genuine.get()));
  linker.register_library(
      hooking::LibraryImage::exporting_all("libgbooster.so", wrapper.get()));

  std::printf("--- without LD_PRELOAD: calls reach the genuine driver ---\n");
  {
    auto gl = linker.link_gles("libGLESv2.so");
    run_app(*gl);
    std::printf("  intercepted frames so far: %d (expected 0)\n\n",
                frames_intercepted);
  }

  std::printf("--- LD_PRELOAD=libgbooster.so ---\n");
  linker.set_preload({"libgbooster.so"});

  std::printf("case 1: load-time direct linking\n");
  {
    auto gl = linker.link_gles("libGLESv2.so");
    run_app(*gl);
  }

  std::printf("case 2: eglGetProcAddress per symbol\n");
  {
    gles::GlesApi* clear_provider = linker.egl_get_proc_address("glClear");
    gles::GlesApi* swap_provider = linker.egl_get_proc_address("eglSwapBuffers");
    clear_provider->glClearColor(0.3f, 0.3f, 0.3f, 1.0f);
    clear_provider->glClear(gles::GL_COLOR_BUFFER_BIT);
    swap_provider->eglSwapBuffers();
  }

  std::printf("case 3: dlopen(\"libGLESv2.so\") + dlsym\n");
  {
    const auto handle = linker.dl_open("libGLESv2.so");
    gles::GlesApi* api = linker.dl_sym(handle, "glClear");
    api->glClearColor(0.9f, 0.1f, 0.1f, 1.0f);
    api->glClear(gles::GL_COLOR_BUFFER_BIT);
    api->eglSwapBuffers();
  }

  std::printf("\nframes intercepted by the wrapper: %d (expected 3)\n",
              frames_intercepted);
  std::printf("the genuine driver rendered nothing after the preload: its\n"
              "framebuffer is still the pre-preload blue clear.\n");
  return frames_intercepted == 3 ? 0 : 1;
}
