// Quickstart: offload one application's rendering to one service device.
//
// This walks the whole GBooster pipeline at library level:
//   1. build a simulated in-home network (WiFi + Bluetooth);
//   2. start a service device (an Nvidia Shield running the replica);
//   3. install GBooster's wrapper library into the dynamic-linker model;
//   4. run an unmodified "game" that just calls OpenGL ES;
//   5. watch frames come back rendered, encoded, and displayed in order.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "apps/game_app.h"
#include "apps/workload.h"
#include "core/gbooster.h"
#include "core/service_runtime.h"
#include "device/device_profiles.h"
#include "gles/direct_backend.h"
#include "hooking/dynamic_linker.h"
#include "net/medium.h"
#include "net/radio.h"
#include "net/reliable.h"
#include "runtime/event_loop.h"

int main() {
  using namespace gb;

  // --- 1. the in-home network -------------------------------------------------
  EventLoop loop;
  Rng rng(2017);
  net::MediumConfig wifi_config;
  wifi_config.loss_rate = 0.002;
  net::Medium wifi(loop, wifi_config, rng.fork(), "wifi");
  net::RadioInterface phone_wifi(loop, net::wifi_radio_config(), "phone-wifi");

  // --- 2. the service device (game console) -----------------------------------
  core::ServiceRuntimeConfig service_config;
  service_config.nominal_width = 600;
  service_config.nominal_height = 480;
  service_config.render_width = 300;   // replica renders real pixels
  service_config.render_height = 240;
  auto console = std::make_unique<core::ServiceRuntime>(
      loop, /*node=*/100, device::nvidia_shield(), service_config);
  console->endpoint().bind(wifi, nullptr);

  // --- 3. GBooster on the phone ------------------------------------------------
  net::ReliableEndpoint phone(loop, /*node=*/1);
  phone.bind(wifi, &phone_wifi);
  core::GBoosterConfig gb_config;
  gb_config.nominal_width = 600;
  gb_config.nominal_height = 480;
  core::GBoosterRuntime gbooster(
      loop, gb_config, phone,
      {{100, "Nvidia Shield", device::nvidia_shield().gpu.fillrate_pps *
                                  device::nvidia_shield().gpu_request_efficiency}});
  phone.set_handler([&](net::NodeId src, net::NodeId stream, Bytes message) {
    gbooster.on_message(src, stream, std::move(message));
  });

  // The LD_PRELOAD moment: register the genuine driver, then install the
  // wrapper in front of it. The application below never knows.
  hooking::DynamicLinker linker;
  auto genuine = std::make_unique<gles::DirectBackend>(600, 480,
                                                       gles::PresentFn{});
  linker.register_library(
      hooking::LibraryImage::exporting_all("libGLESv2.so", genuine.get()));
  gbooster.install(linker);
  auto gl = linker.link_gles("libGLESv2.so");

  // --- 4. an unmodified application ---------------------------------------------
  apps::GameApp game(apps::g1_gta_san_andreas(), *gl, 600, 480, rng.fork());
  game.setup();

  int displayed = 0;
  gbooster.set_display_handler(
      [&](std::uint64_t sequence, SimTime latency, const Image& frame) {
        ++displayed;
        if (sequence < 5 || sequence % 20 == 0) {
          std::printf("frame %3llu displayed after %6.1f ms (%dx%d pixels)\n",
                      static_cast<unsigned long long>(sequence), latency.ms(),
                      frame.width(), frame.height());
        }
      });

  // --- 5. play one simulated second per frame batch ------------------------------
  std::printf("offloading %s to an %s over in-home WiFi...\n\n",
              game.spec().name.c_str(), "Nvidia Shield");
  for (int frame = 0; frame < 60; ++frame) {
    while (!gbooster.can_issue_frame()) loop.step();
    game.render_frame(frame / 30.0, /*touch_burst=*/false);
    loop.run_until(loop.now() + ms(26));  // ~38 FPS issue cadence
  }
  loop.run_until(loop.now() + seconds(1.0));

  const auto& stats = gbooster.stats();
  std::printf("\n%d frames displayed, %.1f KB sent, %.1f KB received\n",
              displayed, stats.bytes_sent / 1024.0,
              stats.bytes_received / 1024.0);
  std::printf("command-cache hit rate: %.0f%%, wrapper memory overhead: %.1f MB\n",
              stats.render_cache.hit_rate() * 100.0,
              gbooster.memory_overhead_bytes() / (1024.0 * 1024.0));
  return displayed > 0 ? 0 : 1;
}
