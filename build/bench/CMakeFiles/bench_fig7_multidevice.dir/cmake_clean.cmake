file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_multidevice.dir/bench_fig7_multidevice.cc.o"
  "CMakeFiles/bench_fig7_multidevice.dir/bench_fig7_multidevice.cc.o.d"
  "bench_fig7_multidevice"
  "bench_fig7_multidevice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_multidevice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
