# Empty compiler generated dependencies file for bench_fig7_multidevice.
# This may be replaced when dependencies are built.
