file(REMOVE_RECURSE
  "CMakeFiles/bench_multiuser.dir/bench_multiuser.cc.o"
  "CMakeFiles/bench_multiuser.dir/bench_multiuser.cc.o.d"
  "bench_multiuser"
  "bench_multiuser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiuser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
