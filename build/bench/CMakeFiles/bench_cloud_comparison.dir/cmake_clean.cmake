file(REMOVE_RECURSE
  "CMakeFiles/bench_cloud_comparison.dir/bench_cloud_comparison.cc.o"
  "CMakeFiles/bench_cloud_comparison.dir/bench_cloud_comparison.cc.o.d"
  "bench_cloud_comparison"
  "bench_cloud_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cloud_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
