# Empty dependencies file for bench_cloud_comparison.
# This may be replaced when dependencies are built.
