file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_nongaming.dir/bench_table3_nongaming.cc.o"
  "CMakeFiles/bench_table3_nongaming.dir/bench_table3_nongaming.cc.o.d"
  "bench_table3_nongaming"
  "bench_table3_nongaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_nongaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
