file(REMOVE_RECURSE
  "CMakeFiles/bench_codec_speed.dir/bench_codec_speed.cc.o"
  "CMakeFiles/bench_codec_speed.dir/bench_codec_speed.cc.o.d"
  "bench_codec_speed"
  "bench_codec_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codec_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
