# Empty compiler generated dependencies file for bench_codec_speed.
# This may be replaced when dependencies are built.
