# Empty compiler generated dependencies file for bench_motivation_power.
# This may be replaced when dependencies are built.
