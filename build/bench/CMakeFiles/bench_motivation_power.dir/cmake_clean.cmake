file(REMOVE_RECURSE
  "CMakeFiles/bench_motivation_power.dir/bench_motivation_power.cc.o"
  "CMakeFiles/bench_motivation_power.dir/bench_motivation_power.cc.o.d"
  "bench_motivation_power"
  "bench_motivation_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motivation_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
