file(REMOVE_RECURSE
  "CMakeFiles/bench_traffic_redundancy.dir/bench_traffic_redundancy.cc.o"
  "CMakeFiles/bench_traffic_redundancy.dir/bench_traffic_redundancy.cc.o.d"
  "bench_traffic_redundancy"
  "bench_traffic_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_traffic_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
