# Empty compiler generated dependencies file for bench_traffic_redundancy.
# This may be replaced when dependencies are built.
