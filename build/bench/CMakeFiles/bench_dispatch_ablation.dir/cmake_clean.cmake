file(REMOVE_RECURSE
  "CMakeFiles/bench_dispatch_ablation.dir/bench_dispatch_ablation.cc.o"
  "CMakeFiles/bench_dispatch_ablation.dir/bench_dispatch_ablation.cc.o.d"
  "bench_dispatch_ablation"
  "bench_dispatch_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dispatch_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
