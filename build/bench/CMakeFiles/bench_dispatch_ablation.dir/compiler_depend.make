# Empty compiler generated dependencies file for bench_dispatch_ablation.
# This may be replaced when dependencies are built.
