# Empty dependencies file for bench_fig1_thermal.
# This may be replaced when dependencies are built.
