file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_thermal.dir/bench_fig1_thermal.cc.o"
  "CMakeFiles/bench_fig1_thermal.dir/bench_fig1_thermal.cc.o.d"
  "bench_fig1_thermal"
  "bench_fig1_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
