file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_acceleration.dir/bench_fig5_acceleration.cc.o"
  "CMakeFiles/bench_fig5_acceleration.dir/bench_fig5_acceleration.cc.o.d"
  "bench_fig5_acceleration"
  "bench_fig5_acceleration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_acceleration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
