# Empty dependencies file for bench_fig5_acceleration.
# This may be replaced when dependencies are built.
