file(REMOVE_RECURSE
  "CMakeFiles/gb_codec.dir/block_coding.cc.o"
  "CMakeFiles/gb_codec.dir/block_coding.cc.o.d"
  "CMakeFiles/gb_codec.dir/dct.cc.o"
  "CMakeFiles/gb_codec.dir/dct.cc.o.d"
  "CMakeFiles/gb_codec.dir/huffman.cc.o"
  "CMakeFiles/gb_codec.dir/huffman.cc.o.d"
  "CMakeFiles/gb_codec.dir/turbo_codec.cc.o"
  "CMakeFiles/gb_codec.dir/turbo_codec.cc.o.d"
  "CMakeFiles/gb_codec.dir/video_ref.cc.o"
  "CMakeFiles/gb_codec.dir/video_ref.cc.o.d"
  "libgb_codec.a"
  "libgb_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
