
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/block_coding.cc" "src/codec/CMakeFiles/gb_codec.dir/block_coding.cc.o" "gcc" "src/codec/CMakeFiles/gb_codec.dir/block_coding.cc.o.d"
  "/root/repo/src/codec/dct.cc" "src/codec/CMakeFiles/gb_codec.dir/dct.cc.o" "gcc" "src/codec/CMakeFiles/gb_codec.dir/dct.cc.o.d"
  "/root/repo/src/codec/huffman.cc" "src/codec/CMakeFiles/gb_codec.dir/huffman.cc.o" "gcc" "src/codec/CMakeFiles/gb_codec.dir/huffman.cc.o.d"
  "/root/repo/src/codec/turbo_codec.cc" "src/codec/CMakeFiles/gb_codec.dir/turbo_codec.cc.o" "gcc" "src/codec/CMakeFiles/gb_codec.dir/turbo_codec.cc.o.d"
  "/root/repo/src/codec/video_ref.cc" "src/codec/CMakeFiles/gb_codec.dir/video_ref.cc.o" "gcc" "src/codec/CMakeFiles/gb_codec.dir/video_ref.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
