# Empty compiler generated dependencies file for gb_codec.
# This may be replaced when dependencies are built.
