file(REMOVE_RECURSE
  "libgb_codec.a"
)
