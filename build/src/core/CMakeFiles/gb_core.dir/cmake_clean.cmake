file(REMOVE_RECURSE
  "CMakeFiles/gb_core.dir/dispatcher.cc.o"
  "CMakeFiles/gb_core.dir/dispatcher.cc.o.d"
  "CMakeFiles/gb_core.dir/gbooster.cc.o"
  "CMakeFiles/gb_core.dir/gbooster.cc.o.d"
  "CMakeFiles/gb_core.dir/interface_switcher.cc.o"
  "CMakeFiles/gb_core.dir/interface_switcher.cc.o.d"
  "CMakeFiles/gb_core.dir/offload_protocol.cc.o"
  "CMakeFiles/gb_core.dir/offload_protocol.cc.o.d"
  "CMakeFiles/gb_core.dir/service_runtime.cc.o"
  "CMakeFiles/gb_core.dir/service_runtime.cc.o.d"
  "CMakeFiles/gb_core.dir/service_runtime_exec.cc.o"
  "CMakeFiles/gb_core.dir/service_runtime_exec.cc.o.d"
  "libgb_core.a"
  "libgb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
