file(REMOVE_RECURSE
  "libgb_predict.a"
)
