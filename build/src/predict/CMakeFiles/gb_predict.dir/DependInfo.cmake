
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/armax.cc" "src/predict/CMakeFiles/gb_predict.dir/armax.cc.o" "gcc" "src/predict/CMakeFiles/gb_predict.dir/armax.cc.o.d"
  "/root/repo/src/predict/rls.cc" "src/predict/CMakeFiles/gb_predict.dir/rls.cc.o" "gcc" "src/predict/CMakeFiles/gb_predict.dir/rls.cc.o.d"
  "/root/repo/src/predict/traffic_predictor.cc" "src/predict/CMakeFiles/gb_predict.dir/traffic_predictor.cc.o" "gcc" "src/predict/CMakeFiles/gb_predict.dir/traffic_predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
