# Empty dependencies file for gb_predict.
# This may be replaced when dependencies are built.
