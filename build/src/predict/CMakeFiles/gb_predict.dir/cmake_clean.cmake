file(REMOVE_RECURSE
  "CMakeFiles/gb_predict.dir/armax.cc.o"
  "CMakeFiles/gb_predict.dir/armax.cc.o.d"
  "CMakeFiles/gb_predict.dir/rls.cc.o"
  "CMakeFiles/gb_predict.dir/rls.cc.o.d"
  "CMakeFiles/gb_predict.dir/traffic_predictor.cc.o"
  "CMakeFiles/gb_predict.dir/traffic_predictor.cc.o.d"
  "libgb_predict.a"
  "libgb_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
