# Empty compiler generated dependencies file for gb_runtime.
# This may be replaced when dependencies are built.
