file(REMOVE_RECURSE
  "CMakeFiles/gb_runtime.dir/event_loop.cc.o"
  "CMakeFiles/gb_runtime.dir/event_loop.cc.o.d"
  "libgb_runtime.a"
  "libgb_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
