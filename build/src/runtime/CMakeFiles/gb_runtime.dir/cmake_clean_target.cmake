file(REMOVE_RECURSE
  "libgb_runtime.a"
)
