file(REMOVE_RECURSE
  "libgb_hooking.a"
)
