# Empty compiler generated dependencies file for gb_hooking.
# This may be replaced when dependencies are built.
