file(REMOVE_RECURSE
  "CMakeFiles/gb_hooking.dir/dynamic_linker.cc.o"
  "CMakeFiles/gb_hooking.dir/dynamic_linker.cc.o.d"
  "libgb_hooking.a"
  "libgb_hooking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_hooking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
