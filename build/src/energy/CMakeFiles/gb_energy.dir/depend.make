# Empty dependencies file for gb_energy.
# This may be replaced when dependencies are built.
