file(REMOVE_RECURSE
  "libgb_energy.a"
)
