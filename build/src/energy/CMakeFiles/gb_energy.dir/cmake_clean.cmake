file(REMOVE_RECURSE
  "CMakeFiles/gb_energy.dir/thermal.cc.o"
  "CMakeFiles/gb_energy.dir/thermal.cc.o.d"
  "libgb_energy.a"
  "libgb_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
