file(REMOVE_RECURSE
  "libgb_compress.a"
)
