
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/command_cache.cc" "src/compress/CMakeFiles/gb_compress.dir/command_cache.cc.o" "gcc" "src/compress/CMakeFiles/gb_compress.dir/command_cache.cc.o.d"
  "/root/repo/src/compress/lz4.cc" "src/compress/CMakeFiles/gb_compress.dir/lz4.cc.o" "gcc" "src/compress/CMakeFiles/gb_compress.dir/lz4.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/gb_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/gles/CMakeFiles/gb_gles.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
