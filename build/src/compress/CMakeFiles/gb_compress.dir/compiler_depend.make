# Empty compiler generated dependencies file for gb_compress.
# This may be replaced when dependencies are built.
