file(REMOVE_RECURSE
  "CMakeFiles/gb_compress.dir/command_cache.cc.o"
  "CMakeFiles/gb_compress.dir/command_cache.cc.o.d"
  "CMakeFiles/gb_compress.dir/lz4.cc.o"
  "CMakeFiles/gb_compress.dir/lz4.cc.o.d"
  "libgb_compress.a"
  "libgb_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
