# Empty dependencies file for gb_compress.
# This may be replaced when dependencies are built.
