file(REMOVE_RECURSE
  "libgb_sim.a"
)
