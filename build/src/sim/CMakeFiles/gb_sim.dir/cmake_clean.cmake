file(REMOVE_RECURSE
  "CMakeFiles/gb_sim.dir/metrics.cc.o"
  "CMakeFiles/gb_sim.dir/metrics.cc.o.d"
  "CMakeFiles/gb_sim.dir/multiuser.cc.o"
  "CMakeFiles/gb_sim.dir/multiuser.cc.o.d"
  "CMakeFiles/gb_sim.dir/session.cc.o"
  "CMakeFiles/gb_sim.dir/session.cc.o.d"
  "libgb_sim.a"
  "libgb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
