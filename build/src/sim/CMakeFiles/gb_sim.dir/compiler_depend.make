# Empty compiler generated dependencies file for gb_sim.
# This may be replaced when dependencies are built.
