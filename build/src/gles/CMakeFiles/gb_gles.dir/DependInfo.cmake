
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gles/api.cc" "src/gles/CMakeFiles/gb_gles.dir/api.cc.o" "gcc" "src/gles/CMakeFiles/gb_gles.dir/api.cc.o.d"
  "/root/repo/src/gles/context.cc" "src/gles/CMakeFiles/gb_gles.dir/context.cc.o" "gcc" "src/gles/CMakeFiles/gb_gles.dir/context.cc.o.d"
  "/root/repo/src/gles/context_draw.cc" "src/gles/CMakeFiles/gb_gles.dir/context_draw.cc.o" "gcc" "src/gles/CMakeFiles/gb_gles.dir/context_draw.cc.o.d"
  "/root/repo/src/gles/direct_backend.cc" "src/gles/CMakeFiles/gb_gles.dir/direct_backend.cc.o" "gcc" "src/gles/CMakeFiles/gb_gles.dir/direct_backend.cc.o.d"
  "/root/repo/src/gles/shader_compiler.cc" "src/gles/CMakeFiles/gb_gles.dir/shader_compiler.cc.o" "gcc" "src/gles/CMakeFiles/gb_gles.dir/shader_compiler.cc.o.d"
  "/root/repo/src/gles/shader_vm.cc" "src/gles/CMakeFiles/gb_gles.dir/shader_vm.cc.o" "gcc" "src/gles/CMakeFiles/gb_gles.dir/shader_vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
