file(REMOVE_RECURSE
  "CMakeFiles/gb_gles.dir/api.cc.o"
  "CMakeFiles/gb_gles.dir/api.cc.o.d"
  "CMakeFiles/gb_gles.dir/context.cc.o"
  "CMakeFiles/gb_gles.dir/context.cc.o.d"
  "CMakeFiles/gb_gles.dir/context_draw.cc.o"
  "CMakeFiles/gb_gles.dir/context_draw.cc.o.d"
  "CMakeFiles/gb_gles.dir/direct_backend.cc.o"
  "CMakeFiles/gb_gles.dir/direct_backend.cc.o.d"
  "CMakeFiles/gb_gles.dir/shader_compiler.cc.o"
  "CMakeFiles/gb_gles.dir/shader_compiler.cc.o.d"
  "CMakeFiles/gb_gles.dir/shader_vm.cc.o"
  "CMakeFiles/gb_gles.dir/shader_vm.cc.o.d"
  "libgb_gles.a"
  "libgb_gles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_gles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
