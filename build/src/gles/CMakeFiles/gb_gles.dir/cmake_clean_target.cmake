file(REMOVE_RECURSE
  "libgb_gles.a"
)
