# Empty dependencies file for gb_gles.
# This may be replaced when dependencies are built.
