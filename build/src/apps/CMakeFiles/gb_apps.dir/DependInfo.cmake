
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/game_app.cc" "src/apps/CMakeFiles/gb_apps.dir/game_app.cc.o" "gcc" "src/apps/CMakeFiles/gb_apps.dir/game_app.cc.o.d"
  "/root/repo/src/apps/touch.cc" "src/apps/CMakeFiles/gb_apps.dir/touch.cc.o" "gcc" "src/apps/CMakeFiles/gb_apps.dir/touch.cc.o.d"
  "/root/repo/src/apps/workload.cc" "src/apps/CMakeFiles/gb_apps.dir/workload.cc.o" "gcc" "src/apps/CMakeFiles/gb_apps.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gles/CMakeFiles/gb_gles.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
