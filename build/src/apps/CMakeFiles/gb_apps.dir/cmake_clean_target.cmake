file(REMOVE_RECURSE
  "libgb_apps.a"
)
