# Empty dependencies file for gb_apps.
# This may be replaced when dependencies are built.
