file(REMOVE_RECURSE
  "CMakeFiles/gb_apps.dir/game_app.cc.o"
  "CMakeFiles/gb_apps.dir/game_app.cc.o.d"
  "CMakeFiles/gb_apps.dir/touch.cc.o"
  "CMakeFiles/gb_apps.dir/touch.cc.o.d"
  "CMakeFiles/gb_apps.dir/workload.cc.o"
  "CMakeFiles/gb_apps.dir/workload.cc.o.d"
  "libgb_apps.a"
  "libgb_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
