file(REMOVE_RECURSE
  "libgb_device.a"
)
