
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/device_profiles.cc" "src/device/CMakeFiles/gb_device.dir/device_profiles.cc.o" "gcc" "src/device/CMakeFiles/gb_device.dir/device_profiles.cc.o.d"
  "/root/repo/src/device/gpu_model.cc" "src/device/CMakeFiles/gb_device.dir/gpu_model.cc.o" "gcc" "src/device/CMakeFiles/gb_device.dir/gpu_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/gb_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
