file(REMOVE_RECURSE
  "CMakeFiles/gb_device.dir/device_profiles.cc.o"
  "CMakeFiles/gb_device.dir/device_profiles.cc.o.d"
  "CMakeFiles/gb_device.dir/gpu_model.cc.o"
  "CMakeFiles/gb_device.dir/gpu_model.cc.o.d"
  "libgb_device.a"
  "libgb_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
