# Empty compiler generated dependencies file for gb_device.
# This may be replaced when dependencies are built.
