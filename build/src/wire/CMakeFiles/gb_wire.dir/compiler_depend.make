# Empty compiler generated dependencies file for gb_wire.
# This may be replaced when dependencies are built.
