file(REMOVE_RECURSE
  "CMakeFiles/gb_wire.dir/decoder.cc.o"
  "CMakeFiles/gb_wire.dir/decoder.cc.o.d"
  "CMakeFiles/gb_wire.dir/recorder.cc.o"
  "CMakeFiles/gb_wire.dir/recorder.cc.o.d"
  "libgb_wire.a"
  "libgb_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
