file(REMOVE_RECURSE
  "libgb_wire.a"
)
