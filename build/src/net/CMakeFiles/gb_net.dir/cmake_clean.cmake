file(REMOVE_RECURSE
  "CMakeFiles/gb_net.dir/medium.cc.o"
  "CMakeFiles/gb_net.dir/medium.cc.o.d"
  "CMakeFiles/gb_net.dir/radio.cc.o"
  "CMakeFiles/gb_net.dir/radio.cc.o.d"
  "CMakeFiles/gb_net.dir/reliable.cc.o"
  "CMakeFiles/gb_net.dir/reliable.cc.o.d"
  "libgb_net.a"
  "libgb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
