file(REMOVE_RECURSE
  "libgb_net.a"
)
