# Empty compiler generated dependencies file for gb_net.
# This may be replaced when dependencies are built.
