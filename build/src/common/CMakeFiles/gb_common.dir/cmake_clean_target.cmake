file(REMOVE_RECURSE
  "libgb_common.a"
)
