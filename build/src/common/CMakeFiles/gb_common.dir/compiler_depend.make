# Empty compiler generated dependencies file for gb_common.
# This may be replaced when dependencies are built.
