file(REMOVE_RECURSE
  "CMakeFiles/gb_common.dir/rng.cc.o"
  "CMakeFiles/gb_common.dir/rng.cc.o.d"
  "libgb_common.a"
  "libgb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
