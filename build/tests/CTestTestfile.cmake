# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_event_loop[1]_include.cmake")
include("/root/repo/build/tests/test_shader[1]_include.cmake")
include("/root/repo/build/tests/test_context[1]_include.cmake")
include("/root/repo/build/tests/test_hooking[1]_include.cmake")
include("/root/repo/build/tests/test_wire[1]_include.cmake")
include("/root/repo/build/tests/test_lz4[1]_include.cmake")
include("/root/repo/build/tests/test_command_cache[1]_include.cmake")
include("/root/repo/build/tests/test_codec[1]_include.cmake")
include("/root/repo/build/tests/test_predict[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_session[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_presenter_liveness[1]_include.cmake")
