file(REMOVE_RECURSE
  "CMakeFiles/test_command_cache.dir/test_command_cache.cc.o"
  "CMakeFiles/test_command_cache.dir/test_command_cache.cc.o.d"
  "test_command_cache"
  "test_command_cache.pdb"
  "test_command_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_command_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
