# Empty dependencies file for test_command_cache.
# This may be replaced when dependencies are built.
