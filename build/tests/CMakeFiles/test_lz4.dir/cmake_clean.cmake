file(REMOVE_RECURSE
  "CMakeFiles/test_lz4.dir/test_lz4.cc.o"
  "CMakeFiles/test_lz4.dir/test_lz4.cc.o.d"
  "test_lz4"
  "test_lz4.pdb"
  "test_lz4[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lz4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
