# Empty compiler generated dependencies file for test_lz4.
# This may be replaced when dependencies are built.
