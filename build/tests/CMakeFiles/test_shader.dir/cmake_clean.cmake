file(REMOVE_RECURSE
  "CMakeFiles/test_shader.dir/test_shader.cc.o"
  "CMakeFiles/test_shader.dir/test_shader.cc.o.d"
  "test_shader"
  "test_shader.pdb"
  "test_shader[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
