# Empty compiler generated dependencies file for test_shader.
# This may be replaced when dependencies are built.
