file(REMOVE_RECURSE
  "CMakeFiles/test_hooking.dir/test_hooking.cc.o"
  "CMakeFiles/test_hooking.dir/test_hooking.cc.o.d"
  "test_hooking"
  "test_hooking.pdb"
  "test_hooking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hooking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
