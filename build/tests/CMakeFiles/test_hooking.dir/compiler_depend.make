# Empty compiler generated dependencies file for test_hooking.
# This may be replaced when dependencies are built.
