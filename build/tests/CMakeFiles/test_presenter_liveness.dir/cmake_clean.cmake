file(REMOVE_RECURSE
  "CMakeFiles/test_presenter_liveness.dir/test_presenter_liveness.cc.o"
  "CMakeFiles/test_presenter_liveness.dir/test_presenter_liveness.cc.o.d"
  "test_presenter_liveness"
  "test_presenter_liveness.pdb"
  "test_presenter_liveness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_presenter_liveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
