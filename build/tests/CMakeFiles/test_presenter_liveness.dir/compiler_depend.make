# Empty compiler generated dependencies file for test_presenter_liveness.
# This may be replaced when dependencies are built.
