file(REMOVE_RECURSE
  "CMakeFiles/transparent_hooking.dir/transparent_hooking.cpp.o"
  "CMakeFiles/transparent_hooking.dir/transparent_hooking.cpp.o.d"
  "transparent_hooking"
  "transparent_hooking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transparent_hooking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
