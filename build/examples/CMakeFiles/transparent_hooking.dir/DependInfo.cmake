
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/transparent_hooking.cpp" "examples/CMakeFiles/transparent_hooking.dir/transparent_hooking.cpp.o" "gcc" "examples/CMakeFiles/transparent_hooking.dir/transparent_hooking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/gb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/gb_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/gb_device.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/gb_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/gb_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/gb_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/gb_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/gb_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/hooking/CMakeFiles/gb_hooking.dir/DependInfo.cmake"
  "/root/repo/build/src/gles/CMakeFiles/gb_gles.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
