# Empty compiler generated dependencies file for transparent_hooking.
# This may be replaced when dependencies are built.
