// §VI-C ablation: Eq. 4 request assignment against naive policies on a
// heterogeneous service-device fleet (console + TV box + laptop). Round-robin
// and random ignore capability, queue depth, and latency, so slow devices
// become stragglers — and because frames display strictly in sequence order
// (§VI-C), one straggler stalls the whole stream.
#include <cstdio>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace gb;
  const double duration = bench::default_duration(240.0);

  struct Row {
    const char* label;
    core::DispatchPolicy policy;
  };
  const std::vector<Row> rows = {
      {"Eq. 4 (the paper)", core::DispatchPolicy::kEq4},
      {"round-robin", core::DispatchPolicy::kRoundRobin},
      {"random", core::DispatchPolicy::kRandom},
  };

  std::vector<sim::SessionConfig> configs;
  for (const Row& row : rows) {
    sim::SessionConfig config = bench::paper_config(
        apps::g1_gta_san_andreas(), device::nexus5(), duration);
    // A lopsided fleet: the TV box is ~4x weaker than the console.
    config.service_devices = {device::nvidia_shield(), device::minix_neo_u1(),
                              device::dell_m4600()};
    config.gbooster.dispatch_policy = row.policy;
    configs.push_back(std::move(config));
  }
  const auto results = bench::run_all(std::move(configs));

  bench::print_header(
      "SVI-C ablation: assignment policy on a heterogeneous fleet "
      "(G1, Nexus 5; Shield + Minix + laptop)");
  std::printf("%-22s %-12s %-14s %-12s\n", "policy", "median FPS",
              "response ms", "stability");
  bench::print_rule();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-22s %-12.0f %-14.1f %-11.0f%%\n", rows[i].label,
                results[i].metrics.median_fps,
                results[i].metrics.avg_response_ms,
                results[i].metrics.fps_stability * 100.0);
  }
  bench::print_rule();
  std::printf(
      "Eq. 4 keeps the weak TV box lightly loaded; blind policies assign it\n"
      "a third of the requests, and in-order display turns each late result\n"
      "into a stream-wide stall.\n");
  return 0;
}
