// Fault-recovery benchmark (DESIGN.md §8): quantifies what device failures
// cost the player — dropped frames, display stall time, p99 frame latency —
// across failure scenarios and service-device counts.
//
// Scenarios:
//   none           healthy baseline
//   burst          Gilbert–Elliott burst loss on both media
//   crash          device 0 crashes mid-session and never returns
//   crash-recover  device 0 crashes mid-session and returns later
//   flap           the user's WiFi radio dies mid-session (transport A/B)
//
//   ./bench_fault_recovery                      # console table
//   ./bench_fault_recovery --benchmark_format=json
//
// Environment knobs: GB_QUICK=1 / GB_DURATION=<sec> (see bench_util.h).
#include <benchmark/benchmark.h>

#include <string>

#include "bench_counters.h"
#include "bench_util.h"

using namespace gb;

namespace {

enum Scenario : int {
  kNone = 0,
  kBurst = 1,
  kCrash = 2,
  kCrashRecover = 3,
  kFlap = 4,  // WiFi radio flap mid-session (transport A/B only)
};

// Transport configurations for the §13 A/B: the pure-ARQ single-route
// baseline vs. FEC parity groups + multipath striping across WiFi and
// Bluetooth.
enum Transport : int { kPureArq = 0, kFecMultipath = 1 };

void apply_transport(sim::SessionConfig& config, int transport) {
  if (transport != kFecMultipath) return;
  config.switcher.policy = core::SwitchPolicy::kMultipath;
  config.transport.fec_group_size = 4;
  config.service.transport.fec_group_size = 4;
}

sim::SessionConfig scenario_config(int scenario, int devices,
                                   double duration_s) {
  sim::SessionConfig config =
      bench::paper_config(apps::g1_gta_san_andreas(), device::nexus5(),
                          duration_s);
  for (int d = 0; d < devices; ++d) {
    config.service_devices.push_back(device::nvidia_shield());
  }
  switch (scenario) {
    case kNone:
      break;
    case kBurst:
      config.fault_burst.enabled = true;
      config.fault_burst.p_enter_burst = 0.005;
      config.fault_burst.p_exit_burst = 0.05;
      config.fault_burst.loss_burst = 0.8;
      break;
    case kCrash:
      config.service_outages.push_back(
          {0, duration_s * 0.4, duration_s + 1.0});
      break;
    case kCrashRecover:
      config.service_outages.push_back(
          {0, duration_s * 0.4, duration_s * 0.6});
      break;
    case kFlap:
      // The user's WiFi dies for 20% of the session mid-way; Bluetooth
      // stays up. Single-route transports stall on RTO repair storms, the
      // multipath transport reroutes.
      config.link_flaps.push_back({0, duration_s * 0.4, duration_s * 0.6});
      break;
    default:
      break;
  }
  // Per-stage latency breakdown rides along in every scenario's JSON —
  // recovery work shows up as which stage absorbed the failure, not just as
  // a fatter p99.
  config.collect_stage_breakdown = true;
  return config;
}

void BM_FaultRecovery(benchmark::State& state) {
  const int scenario = static_cast<int>(state.range(0));
  const int devices = static_cast<int>(state.range(1));
  const double duration_s = bench::default_duration(40.0);
  sim::SessionResult result;
  for (auto _ : state) {
    result = sim::run_session(scenario_config(scenario, devices, duration_s));
  }
  state.counters["fps"] = result.metrics.median_fps;
  state.counters["frames_dropped"] =
      static_cast<double>(result.gbooster.frames_dropped);
  state.counters["stall_s"] = result.metrics.stall_seconds;
  state.counters["max_gap_s"] = result.metrics.max_display_gap_s;
  state.counters["p99_ms"] = result.metrics.p99_response_ms;
  state.counters["redispatched"] =
      static_cast<double>(result.gbooster.frames_redispatched);
  state.counters["local_frames"] =
      static_cast<double>(result.gbooster.frames_rendered_locally);
  state.counters["failovers"] =
      static_cast<double>(result.gbooster.device_failovers);
  state.counters["epoch_resets"] =
      static_cast<double>(result.gbooster.render_epoch_resets +
                          result.gbooster.state_epoch_resets);
  bench::report_stage_breakdown(state, result.metrics);
  bench::report_transport(state, result);
}

// Transport comparison (DESIGN.md §13): pure-ARQ single-route vs. XOR-FEC +
// multipath striping under burst loss and a WiFi radio flap. The robustness
// claim in EXPERIMENTS.md quotes these rows: under `burst`, FEC+multipath
// must beat pure ARQ on stall time and p99 while the parity overhead column
// shows what that cost on the wire.
void BM_TransportComparison(benchmark::State& state) {
  const int scenario = static_cast<int>(state.range(0));
  const int transport = static_cast<int>(state.range(1));
  const double duration_s = bench::default_duration(40.0);
  sim::SessionResult result;
  for (auto _ : state) {
    sim::SessionConfig config =
        scenario_config(scenario, /*devices=*/2, duration_s);
    apply_transport(config, transport);
    result = sim::run_session(config);
  }
  state.counters["fps"] = result.metrics.median_fps;
  state.counters["stall_s"] = result.metrics.stall_seconds;
  state.counters["max_gap_s"] = result.metrics.max_display_gap_s;
  state.counters["p99_ms"] = result.metrics.p99_response_ms;
  state.counters["frames_dropped"] =
      static_cast<double>(result.gbooster.frames_dropped);
  state.counters["abandoned"] =
      static_cast<double>(result.transport.messages_abandoned +
                          result.service_transport.messages_abandoned);
  bench::report_transport(state, result);
}

// Recovery comparison (DESIGN.md §10): the same crash-recover and burst
// scenarios under the two state-loss recovery policies — per-straggler
// GL-state snapshot resync (the default) vs. a fleet-wide state-epoch reset
// per abandoned multicast (the §8 baseline, `snapshot_recovery = false`).
// The epoch-reset baseline also leaves the straggler's GL state stale; the
// correctness half of the comparison is pinned bit-for-bit by
// `tests/test_snapshot.cc` (SnapshotResync.*BitIdenticalFrames).
void BM_RecoveryComparison(benchmark::State& state) {
  const int scenario = static_cast<int>(state.range(0));
  const int devices = static_cast<int>(state.range(1));
  const bool snapshots = state.range(2) != 0;
  const double duration_s = bench::default_duration(40.0);
  sim::SessionResult result;
  for (auto _ : state) {
    sim::SessionConfig config =
        scenario_config(scenario, devices, duration_s);
    config.gbooster.snapshot_recovery = snapshots;
    result = sim::run_session(config);
  }
  state.counters["fps"] = result.metrics.median_fps;
  state.counters["stall_s"] = result.metrics.stall_seconds;
  state.counters["p99_ms"] = result.metrics.p99_response_ms;
  state.counters["snapshots_sent"] =
      static_cast<double>(result.gbooster.snapshots_sent);
  state.counters["scoped_recoveries"] =
      static_cast<double>(result.gbooster.scoped_state_recoveries);
  state.counters["state_epoch_resets"] =
      static_cast<double>(result.gbooster.state_epoch_resets);
  state.counters["state_hit_rate"] = result.gbooster.state_cache.hit_rate();
  state.counters["bytes_sent"] =
      static_cast<double>(result.gbooster.bytes_sent);
  state.counters["frames_dropped"] =
      static_cast<double>(result.gbooster.frames_dropped);
  state.counters["redispatched"] =
      static_cast<double>(result.gbooster.frames_redispatched);
  state.counters["max_gap_s"] = result.metrics.max_display_gap_s;
}

}  // namespace

BENCHMARK(BM_FaultRecovery)
    ->ArgNames({"scenario", "devices"})
    ->ArgsProduct({{kNone, kBurst, kCrash, kCrashRecover}, {1, 2, 3}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_TransportComparison)
    ->ArgNames({"scenario", "transport"})
    ->ArgsProduct({{kNone, kBurst, kFlap}, {kPureArq, kFecMultipath}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_RecoveryComparison)
    ->ArgNames({"scenario", "devices", "snapshots"})
    ->ArgsProduct({{kCrash, kCrashRecover}, {2, 3}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
