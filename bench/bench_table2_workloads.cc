// Table II reproduction: the six evaluation games with genre and package
// size, extended with the synthetic engine's measured per-frame command
// statistics (so the workload calibration is visible).
#include <cstdio>
#include <memory>

#include "apps/game_app.h"
#include "bench_util.h"
#include "wire/recorder.h"

int main() {
  using namespace gb;
  bench::print_header("Table II: games for experiments and their shape");
  std::printf("%-4s %-22s %-14s %-8s %-8s %-10s %-10s\n", "Id", "Name",
              "Genre", "Pkg GB", "Draws", "Cmds/frm", "KB/frm");
  bench::print_rule();
  for (const auto& spec : apps::all_games()) {
    // Measure one steady-state frame through the real recorder.
    std::size_t commands = 0;
    std::size_t bytes = 0;
    auto recorder = std::make_unique<wire::CommandRecorder>(
        600, 480, [](wire::FrameCommands) { return true; });
    apps::GameApp app(spec, *recorder, 600, 480, Rng(1));
    app.setup();
    app.render_frame(0.5, false);   // absorbs setup
    app.render_frame(0.55, false);  // steady state
    commands = recorder->last_frame_profile().command_count;
    bytes = recorder->last_frame_profile().serialized_bytes;
    std::printf("%-4s %-22s %-14s %-8.2f %-8d %-10zu %-10.1f\n",
                spec.id.c_str(), spec.name.c_str(),
                apps::genre_name(spec.genre).c_str(), spec.package_gb,
                spec.draw_calls_per_frame, commands,
                static_cast<double>(bytes) / 1024.0);
  }
  bench::print_rule();
  std::printf("Package sizes match Table II; command statistics are the\n"
              "synthetic engine's calibrated per-genre shapes.\n");
  return 0;
}
