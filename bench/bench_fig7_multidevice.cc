// Fig. 7 reproduction: FPS metrics of G1 on the Nexus 5 as the number of
// service devices grows 0..5. Paper: 23 (local) -> 40 (one device) -> 51
// (three devices), flat beyond three; the internal request buffer holds at
// most ~3 requests most of the time, which is why extra devices stop
// helping.
#include <cstdio>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace gb;
  const double duration = bench::default_duration(300.0);

  std::vector<sim::SessionConfig> configs;
  for (int devices = 0; devices <= 5; ++devices) {
    sim::SessionConfig config = bench::paper_config(
        apps::g1_gta_san_andreas(), device::nexus5(), duration);
    for (int i = 0; i < devices; ++i) {
      config.service_devices.push_back(device::nvidia_shield());
    }
    configs.push_back(std::move(config));
  }
  const auto results = bench::run_all(std::move(configs));

  bench::print_header("Fig. 7: FPS vs number of service devices (G1, Nexus 5)");
  std::printf("%-10s %-12s %-12s %-14s %-12s\n", "devices", "median FPS",
              "stability", "avg pending", "max pending");
  bench::print_rule();
  for (std::size_t n = 0; n < results.size(); ++n) {
    const auto& r = results[n];
    const auto& g = r.gbooster;
    const double avg_pending =
        g.pending_depth_samples > 0
            ? static_cast<double>(g.pending_depth_sum) / g.pending_depth_samples
            : 0.0;
    std::printf("%-10zu %-12.0f %-12.0f%% %-14.2f %-12llu\n", n,
                r.metrics.median_fps, r.metrics.fps_stability * 100.0,
                avg_pending,
                static_cast<unsigned long long>(g.pending_depth_max));
  }
  bench::print_rule();
  std::printf(
      "Paper shape: a large jump at one device, a further rise to ~51 FPS by\n"
      "three devices, then a plateau; the observed request-buffer depth\n"
      "stays around 3 (generation is CPU-capped), explaining the plateau.\n");
  return 0;
}
