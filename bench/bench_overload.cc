// Overload-control benchmark (DESIGN.md §11): what the closed loop —
// RTT-adaptive retransmission, the AIMD quality governor, and keep-latest
// load shedding — buys the player when the session is congested.
//
// Scenarios:
//   clean   healthy network (the control: overload machinery should be
//           close to free when there is nothing to react to)
//   burst   Gilbert–Elliott burst loss on both media: retransmission storms
//           inflate the transport backlog and the issue->display tail
//
// Each scenario runs twice: `governed=0` is the fixed-30ms-RTO,
// no-governor baseline (the pre-§11 pipeline); `governed=1` enables
// adaptive RTO on both endpoints and the QoS governor on the user runtime.
// The governed run must win on p95 latency and stall time under burst loss
// while keeping the display stream free of gap-timeout drops.
//
//   ./bench_overload                      # console table
//   ./bench_overload --benchmark_format=json
//
// Environment knobs: GB_QUICK=1 / GB_DURATION=<sec> (see bench_util.h).
#include <benchmark/benchmark.h>

#include "bench_counters.h"
#include "bench_util.h"

using namespace gb;

namespace {

enum Scenario : int { kClean = 0, kBurst = 1 };

sim::SessionConfig overload_config(int scenario, bool governed,
                                   double duration_s) {
  sim::SessionConfig config = bench::paper_config(
      apps::g2_modern_combat(), device::nexus5(), duration_s);
  config.service_devices.push_back(device::nvidia_shield());
  if (scenario == kBurst) {
    config.fault_burst.enabled = true;
    config.fault_burst.p_enter_burst = 0.01;
    config.fault_burst.p_exit_burst = 0.05;
    config.fault_burst.loss_burst = 0.8;
  }
  if (governed) {
    // Adaptive RTO is the ReliableConfig default; the governor opts in.
    config.gbooster.qos.enabled = true;
    // Start the quality ladder at the prototype's streaming quality so the
    // clean-scenario comparison is apples-to-apples with the baseline.
    config.gbooster.qos.base_quality = config.service.codec.quality;
    // The healthy pipeline runs ~160 ms issue->display at full depth (six
    // frames of self-queueing): the overload thresholds sit above that so
    // the governor reacts to congestion, not to normal pipelining.
    config.gbooster.qos.target_p95_ms = 250.0;
    config.gbooster.qos.depth_overload = config.gbooster.max_pending_requests + 1;
  } else {
    config.transport.adaptive_rto = false;
    config.service.transport.adaptive_rto = false;
  }
  return config;
}

void BM_OverloadDegradation(benchmark::State& state) {
  const int scenario = static_cast<int>(state.range(0));
  const bool governed = state.range(1) != 0;
  const double duration_s = bench::default_duration(40.0);
  sim::SessionResult result;
  for (auto _ : state) {
    result = sim::run_session(overload_config(scenario, governed, duration_s));
  }
  const core::GBoosterStats& gb = result.gbooster;
  state.counters["fps"] = result.metrics.median_fps;
  state.counters["p95_ms"] = result.metrics.p95_response_ms;
  state.counters["p99_ms"] = result.metrics.p99_response_ms;
  state.counters["stall_s"] = result.metrics.stall_seconds;
  state.counters["max_gap_s"] = result.metrics.max_display_gap_s;
  // Explicit sheds (governor + service admission) vs implicit losses
  // (gap-timeout drops): the point of §11 is converting the latter into the
  // former.
  state.counters["shed_governor"] = static_cast<double>(
      gb.frames_shed_window + gb.frames_shed_deadline + gb.frames_shed_void);
  state.counters["shed_service"] =
      static_cast<double>(result.requests_shed_admission);
  state.counters["frames_dropped"] = static_cast<double>(gb.frames_dropped);
  state.counters["issue_stalls"] = static_cast<double>(gb.issue_stalls);
  // Ungoverned frames carry no per-frame override; they stream at the
  // paper_config codec quality (70).
  state.counters["quality_mean"] =
      gb.quality_samples > 0 ? static_cast<double>(gb.quality_sum) /
                                   static_cast<double>(gb.quality_samples)
                             : 70.0;
  state.counters["bytes_sent_mb"] =
      static_cast<double>(gb.bytes_sent) / 1.0e6;
  bench::report_transport(state, result);
}

}  // namespace

BENCHMARK(BM_OverloadDegradation)
    ->ArgNames({"scenario", "governed"})
    ->ArgsProduct({{kClean, kBurst}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
