// §VIII extension: multiple users sharing one service device.
//
// The paper's prototype serves concurrent users FCFS and names the problem:
// a fast-paced game queued behind a patient puzzle game suffers exactly when
// responsiveness matters most. This bench implements the "sophisticated
// scheduling" §VIII leaves as future work — priority scheduling at the
// shared GPU — under two load regimes:
//
//   (a) contended but feasible: priority scheduling cuts the urgent user's
//       latency at negligible cost to the patient one;
//   (b) oversubscribed: strict priority starves the patient user outright —
//       the reason a production design would need weighted fair sharing,
//       not plain priorities.
#include <cstdio>

#include "bench_util.h"
#include "sim/multiuser.h"

namespace {

using namespace gb;

sim::MultiUserConfig scenario(const apps::WorkloadSpec& urgent,
                              const apps::WorkloadSpec& patient,
                              int patient_count,
                              device::GpuScheduling scheduling,
                              double duration_s) {
  sim::MultiUserConfig config;
  config.duration_s = duration_s;
  config.seed = 77;
  config.users.push_back({urgent, device::nexus5(), /*priority=*/0});
  for (int i = 0; i < patient_count; ++i) {
    config.users.push_back({patient, device::nexus5(), /*priority=*/1});
  }
  config.service_device = device::nvidia_shield();
  config.service_device.gpu.scheduling = scheduling;
  return config;
}

void run_pair(const char* title, const apps::WorkloadSpec& urgent,
              const apps::WorkloadSpec& patient, int patient_count,
              double duration) {
  const auto fcfs = sim::run_multiuser_session(scenario(
      urgent, patient, patient_count, device::GpuScheduling::kFcfs, duration));
  const auto prio = sim::run_multiuser_session(
      scenario(urgent, patient, patient_count,
               device::GpuScheduling::kPriority, duration));

  bench::print_header(title);
  std::printf("%-26s | %-6s %-15s | %-6s %-15s\n", "service scheduling",
              "FPS", "lat mean/p95 ms", "FPS", "lat mean/p95 ms");
  bench::print_rule();
  const auto row = [patient_count](const char* label,
                                   const sim::MultiUserResult& r) {
    // Patient-user columns: averaged across the patient users.
    double fps = 0.0;
    double mean = 0.0;
    double p95 = 0.0;
    for (int i = 1; i <= patient_count; ++i) {
      fps += r.per_user[static_cast<std::size_t>(i)].median_fps;
      mean += r.mean_latency_ms[static_cast<std::size_t>(i)];
      p95 += r.p95_latency_ms[static_cast<std::size_t>(i)];
    }
    fps /= patient_count;
    mean /= patient_count;
    p95 /= patient_count;
    std::printf("%-26s | %-6.0f %6.1f /%6.1f | %-6.0f %6.1f /%6.1f\n", label,
                r.per_user[0].median_fps, r.mean_latency_ms[0],
                r.p95_latency_ms[0], fps, mean, p95);
  };
  row("FCFS (the prototype)", fcfs);
  row("priority (SVIII proposal)", prio);
  bench::print_rule();
  std::printf("service GPU busy: %.0f%% (FCFS) / %.0f%% (priority)\n",
              fcfs.service_gpu_busy_fraction * 100.0,
              prio.service_gpu_busy_fraction * 100.0);
}

}  // namespace

int main() {
  const double duration = bench::default_duration(180.0);

  // The paper's own example pairing: a shooter against a chess game — the
  // chess app renders a heavy 3D board but only a few times a second, so
  // each of its rendering requests is long (non-preemptive!) yet rare.
  apps::WorkloadSpec chess = apps::g4_final_fantasy();
  chess.id = "CH";
  chess.name = "Chess (heavy, patient)";
  chess.gpu_workload_pixels = 140e6;  // ~22 ms per request on the Shield
  chess.target_fps = 10;              // thoughtful pacing
  chess.cpu_frame_seconds = 0.04;
  chess.animation_intensity = 0.1;

  run_pair(
      "SVIII (a): contended — urgent (G3-class) + 2x patient chess "
      "[urgent | patient avg]",
      apps::g3_star_wars_kotor(), chess, /*patient_count=*/2, duration);
  std::printf(
      "Priority scheduling restores the urgent user's frame rate and cuts\n"
      "its latency by ~25%%; the chess users keep their 10 FPS pacing and\n"
      "absorb the queueing delay their turn-based play never feels.\n");

  run_pair(
      "SVIII (b): oversubscribed — urgent (G2) + patient (G5) "
      "[urgent | patient]",
      apps::g2_modern_combat(), apps::g5_candy_crush(), /*patient_count=*/1,
      duration);
  std::printf(
      "Under saturation, strict priority starves the patient user — the\n"
      "follow-up work the paper gestures at needs fair-share scheduling,\n"
      "not bare priorities.\n");
  return 0;
}
