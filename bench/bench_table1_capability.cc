// Table I reproduction: game recommended requirements vs mainstream
// smartphone capability, 2014-2016. The observation driving the paper: CPU
// capability comfortably exceeds requirements while GPU capability merely
// *matches* them — the GPU is the bottleneck.
#include <cstdio>

#include "bench_util.h"
#include "device/device_profiles.h"

int main() {
  using namespace gb;
  bench::print_header("Table I: Game Requirement versus Smartphone Capability");
  std::printf("%-6s %-28s %-22s %-22s %s\n", "Year", "Game", "Required CPU/GPU",
              "Phone CPU/GPU", "Phone");
  bench::print_rule();
  for (const auto& row : device::table1_requirements()) {
    std::printf("%-6d %-28s %.1f GHz %d-core / %.1f GP/s   ", row.year,
                row.game.c_str(), row.required_cpu_ghz, row.required_cpu_cores,
                row.required_gpu_gps);
    std::printf("%.2f GHz %d-core / %.1f GP/s   %s\n", row.phone_cpu_ghz,
                row.phone_cpu_cores, row.phone_gpu_gps, row.phone.c_str());
  }
  bench::print_rule();
  std::printf(
      "Observation: CPU headroom = %.1fx..%.1fx, GPU headroom = 1.0x in every\n"
      "year -> the GPU, not the CPU, is the bottleneck (paper SII).\n",
      1.8 * 6 / 1.0, 2.5 * 4 / 1.5);
  return 0;
}
