// §V-A codec micro-benchmarks (google-benchmark): Turbo vs the x264-class
// reference encoder, plus LZ4 throughput. The paper's argument: software
// H.264 on ARM manages ~1 MP/s while the application produces ~7 MP/s, but
// the Turbo incremental codec reaches ~90 MP/s — so only Turbo can encode in
// real time on typical service devices. The *ratio* between the two encoders
// is the reproducible quantity on any host.
#include <benchmark/benchmark.h>

#include <cmath>

#include "apps/game_app.h"
#include "codec/turbo_codec.h"
#include "codec/video_ref.h"
#include "common/rng.h"
#include "compress/lz4.h"
#include "gles/direct_backend.h"

namespace {

using namespace gb;

// Pre-renders a short animated sequence once per process.
const std::vector<Image>& frames() {
  static const std::vector<Image> kFrames = [] {
    gles::DirectBackend backend(192, 144, {});
    apps::GameApp app(apps::g2_modern_combat(), backend, 192, 144, Rng(9));
    app.setup();
    std::vector<Image> out;
    for (int f = 0; f < 8; ++f) {
      app.render_frame(0.3 + f * 0.04, false);
      out.push_back(backend.context().color_buffer());
    }
    return out;
  }();
  return kFrames;
}

void BM_TurboEncode(benchmark::State& state) {
  const auto& seq = frames();
  codec::TurboEncoder encoder(
      codec::TurboConfig{.quality = static_cast<int>(state.range(0))});
  std::size_t i = 0;
  std::size_t bytes = 0;
  for (auto _ : state) {
    const Bytes out = encoder.encode(seq[i++ % seq.size()]);
    bytes += out.size();
    benchmark::DoNotOptimize(out.data());
  }
  const double pixels = static_cast<double>(state.iterations()) *
                        seq[0].pixel_count();
  state.counters["MP/s"] =
      benchmark::Counter(pixels / 1e6, benchmark::Counter::kIsRate);
  state.counters["KB/frame"] =
      static_cast<double>(bytes) / state.iterations() / 1024.0;
}
BENCHMARK(BM_TurboEncode)->Arg(50)->Arg(75)->Arg(90);

// Thread ablation at fixed quality; wall-clock rate so the counter reflects
// real scaling, not per-thread CPU accounting. bench_parallel_pipeline runs
// the same sweep at a larger frame size alongside decode and rasterization.
void BM_TurboEncodeThreads(benchmark::State& state) {
  const auto& seq = frames();
  codec::TurboConfig config{.quality = 75};
  config.threads = static_cast<int>(state.range(0));
  codec::TurboEncoder encoder(config);
  std::size_t i = 0;
  for (auto _ : state) {
    const Bytes out = encoder.encode(seq[i++ % seq.size()]);
    benchmark::DoNotOptimize(out.data());
  }
  const double pixels = static_cast<double>(state.iterations()) *
                        seq[0].pixel_count();
  state.counters["MP/s"] =
      benchmark::Counter(pixels / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TurboEncodeThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_ReferenceVideoEncode(benchmark::State& state) {
  const auto& seq = frames();
  codec::ReferenceVideoEncoder encoder(
      codec::VideoRefConfig{.quality = 75,
                            .search_range = static_cast<int>(state.range(0))});
  std::size_t i = 0;
  std::size_t bytes = 0;
  for (auto _ : state) {
    const Bytes out = encoder.encode(seq[i++ % seq.size()]);
    bytes += out.size();
    benchmark::DoNotOptimize(out.data());
  }
  const double pixels = static_cast<double>(state.iterations()) *
                        seq[0].pixel_count();
  state.counters["MP/s"] =
      benchmark::Counter(pixels / 1e6, benchmark::Counter::kIsRate);
  state.counters["KB/frame"] =
      static_cast<double>(bytes) / state.iterations() / 1024.0;
}
BENCHMARK(BM_ReferenceVideoEncode)->Arg(7)->Arg(11)->Arg(16);

void BM_TurboDecode(benchmark::State& state) {
  const auto& seq = frames();
  codec::TurboEncoder encoder;
  std::vector<Bytes> encoded;
  for (const Image& f : seq) encoded.push_back(encoder.encode(f));
  // Decode sequences must start at the keyframe; replay the whole GOP.
  for (auto _ : state) {
    codec::TurboDecoder decoder;
    for (const Bytes& b : encoded) {
      auto out = decoder.decode(b);
      benchmark::DoNotOptimize(out->data());
    }
  }
  const double pixels = static_cast<double>(state.iterations()) * seq.size() *
                        seq[0].pixel_count();
  state.counters["MP/s"] =
      benchmark::Counter(pixels / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TurboDecode);

void BM_Lz4Compress(benchmark::State& state) {
  // Command-stream-like input: repeated records with small mutations.
  Rng rng(5);
  Bytes input;
  Bytes record(48, 7);
  for (int i = 0; i < 4000; ++i) {
    record[3] = static_cast<std::uint8_t>(i & 0xff);
    record[11] = static_cast<std::uint8_t>(rng.next_below(8));
    input.insert(input.end(), record.begin(), record.end());
  }
  std::size_t out_bytes = 0;
  for (auto _ : state) {
    const Bytes block = compress::lz4_compress(input);
    out_bytes = block.size();
    benchmark::DoNotOptimize(block.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
  state.counters["ratio"] =
      static_cast<double>(input.size()) / static_cast<double>(out_bytes);
}
BENCHMARK(BM_Lz4Compress);

void BM_Lz4Decompress(benchmark::State& state) {
  Rng rng(6);
  Bytes input(256 * 1024);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng.next_below(8));
  const Bytes block = compress::lz4_compress(input);
  for (auto _ : state) {
    auto out = compress::lz4_decompress(block, input.size());
    benchmark::DoNotOptimize(out->data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_Lz4Decompress);

}  // namespace

BENCHMARK_MAIN();
