// §VII-F reproduction: GBooster vs an OnLive-style cloud gaming platform.
// Paper: over a 10 Mbps Internet connection OnLive streams 1280x720 capped
// at 30 FPS with ~150 ms response — about 5x GBooster's response time.
#include <cstdio>

#include "bench_util.h"
#include "sim/cloud_model.h"

int main() {
  using namespace gb;
  const double duration = bench::default_duration(300.0);

  // GBooster on the paper's headline configuration.
  sim::SessionConfig config = bench::paper_config(apps::g1_gta_san_andreas(),
                                                  device::nexus5(), duration);
  config.service_devices = {device::nvidia_shield()};
  const sim::SessionResult gbooster = sim::run_session(config);

  const sim::CloudResult cloud = sim::evaluate_cloud(sim::CloudConfig{});

  bench::print_header("SVII-F: GBooster vs cloud remote rendering (OnLive)");
  std::printf("%-26s %-12s %-16s %-14s\n", "system", "FPS", "response (ms)",
              "network");
  bench::print_rule();
  std::printf("%-26s %-12.0f %-16.1f %s\n", "GBooster (LAN, Shield)",
              gbooster.metrics.median_fps, gbooster.metrics.avg_response_ms,
              "in-home WiFi/BT");
  std::printf("%-26s %-12.0f %-16.1f %s\n", "OnLive-style cloud", cloud.fps,
              cloud.response_time_ms, "10 Mbps Internet");
  bench::print_rule();
  std::printf("response-time ratio: %.1fx (paper: ~5x)\n",
              cloud.response_time_ms / gbooster.metrics.avg_response_ms);
  std::printf("cloud FPS capped at the platform's video encoder (30 FPS);\n"
              "cloud stream uses %.1f Mbps of the 10 Mbps pipe.\n",
              cloud.stream_mbps);
  return 0;
}
