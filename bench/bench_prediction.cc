// §V-B reproduction: traffic-demand prediction quality.
//
//   - ARMA on pure history: FP 23.7%, FN 35.1% (paper);
//   - ARMAX with exogenous attributes 1 (touchstroke rate) and 3 (textures
//     per frame): FP 23%, FN 17%;
//   - the AIC attribute study that selected {1, 3} out of the four
//     candidates.
//
// Traces come from a real offloaded gameplay session (the per-100ms samples
// the switcher sees), concatenated across two action games.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "predict/traffic_predictor.h"

namespace {

using namespace gb;

std::vector<predict::TrafficSample> record_trace(double duration_s) {
  std::vector<predict::TrafficSample> trace;
  for (const auto& game :
       {apps::g1_gta_san_andreas(), apps::g2_modern_combat()}) {
    sim::SessionConfig config =
        bench::paper_config(game, device::nexus5(), duration_s);
    config.service_devices = {device::nvidia_shield()};
    config.collect_traffic_trace = true;
    // Record demand on an uncapped link so the trace reflects offered load.
    config.switcher.policy = core::SwitchPolicy::kAlwaysWifi;
    const sim::SessionResult result = sim::run_session(config);
    trace.insert(trace.end(), result.traffic_trace.begin(),
                 result.traffic_trace.end());
  }
  return trace;
}

std::string attr_name(predict::ExoAttribute a) {
  switch (a) {
    case predict::ExoAttribute::kTouchRate:
      return "1:touch";
    case predict::ExoAttribute::kCommandCount:
      return "2:cmds";
    case predict::ExoAttribute::kTextureCount:
      return "3:tex";
    case predict::ExoAttribute::kCommandDiff:
      return "4:diff";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace gb;
  const double duration = bench::default_duration(300.0);
  const auto trace = record_trace(duration);

  // The exceedance threshold: usable Bluetooth capacity per 100 ms interval.
  const double threshold =
      net::bluetooth_radio_config().bandwidth_bps / 8.0 * 0.6 * 0.1;

  bench::print_header("SV-B: traffic prediction, ARMA vs ARMAX (500 ms lead)");
  std::printf("trace: %zu intervals from G1+G2 offloaded sessions\n",
              trace.size());
  std::printf("%-34s %8s %8s %12s\n", "model", "FP rate", "FN rate", "AIC");
  bench::print_rule();

  struct Candidate {
    std::string label;
    std::vector<predict::ExoAttribute> attrs;
  };
  std::vector<Candidate> candidates = {{"ARMA (history only)", {}}};
  using EA = predict::ExoAttribute;
  // The paper's attribute study: all singles and the interesting pairs.
  for (const EA a : {EA::kTouchRate, EA::kCommandCount, EA::kTextureCount,
                     EA::kCommandDiff}) {
    candidates.push_back({"ARMAX {" + attr_name(a) + "}", {a}});
  }
  candidates.push_back(
      {"ARMAX {1:touch, 3:tex}  <- paper's pick",
       {EA::kTouchRate, EA::kTextureCount}});
  candidates.push_back(
      {"ARMAX {2:cmds, 4:diff}", {EA::kCommandCount, EA::kCommandDiff}});
  candidates.push_back({"ARMAX {all four}",
                        {EA::kTouchRate, EA::kCommandCount, EA::kTextureCount,
                         EA::kCommandDiff}});

  double arma_fn = 0.0;
  double best_fn = 1.0;
  for (const auto& candidate : candidates) {
    predict::TrafficPredictorConfig config;
    config.attributes = candidate.attrs;
    const auto eval = predict::evaluate_predictor(trace, config, threshold);
    // Final-model AIC for the attribute study.
    predict::TrafficPredictor predictor(config);
    for (const auto& s : trace) predictor.observe(s);
    std::printf("%-34s %7.1f%% %7.1f%% %12.1f\n", candidate.label.c_str(),
                eval.fp_rate * 100.0, eval.fn_rate * 100.0,
                predictor.current_aic());
    if (candidate.attrs.empty()) arma_fn = eval.fn_rate;
    best_fn = std::min(best_fn, eval.fn_rate);
  }
  bench::print_rule();
  std::printf("Paper: ARMA FP 23.7%% / FN 35.1%%; ARMAX{1,3} FP 23%% / FN 17%%.\n");
  std::printf("Reproduced FN improvement: %.1f%% -> %.1f%%\n", arma_fn * 100.0,
              best_fn * 100.0);
  return 0;
}
