// Fig. 5 reproduction: median FPS, FPS stability, and average response time
// for the six games on the old-generation (Nexus 5) and new-generation
// (LG G5) phones, local execution vs GBooster with one Nvidia Shield.
//
// Paper anchors (Nexus 5): G1 23->37, G2 22->40 median FPS; stability
// 60/55% -> 75/74%; response below 36 ms with action games dropping ~10 ms,
// role-playing ~2 ms, puzzle +4 ms. On the LG G5 the gains vanish.
#include <cstdio>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace gb;
  const double duration = bench::default_duration(900.0);

  const auto games = apps::all_games();
  for (const auto& phone : {device::nexus5(), device::lg_g5()}) {
    // Build the session matrix: local + offloaded per game.
    std::vector<sim::SessionConfig> configs;
    for (const auto& game : games) {
      configs.push_back(bench::paper_config(game, phone, duration));
      sim::SessionConfig offload = bench::paper_config(game, phone, duration);
      offload.service_devices = {device::nvidia_shield()};
      configs.push_back(std::move(offload));
    }
    const auto results = bench::run_all(std::move(configs));

    bench::print_header("Fig. 5 (" + phone.name +
                        "): median FPS / stability / response time");
    std::printf("%-4s %-22s | %-18s | %-18s | %-20s\n", "Id", "Game",
                "median FPS  L->G", "stability  L->G", "response ms  L->G");
    bench::print_rule();
    for (std::size_t g = 0; g < games.size(); ++g) {
      const sim::SessionResult& local = results[g * 2];
      const sim::SessionResult& boosted = results[g * 2 + 1];
      std::printf("%-4s %-22s | %5.0f -> %-5.0f      | %4.0f%% -> %-4.0f%%"
                  "     | %6.1f -> %-6.1f\n",
                  games[g].id.c_str(), games[g].name.c_str(),
                  local.metrics.median_fps, boosted.metrics.median_fps,
                  local.metrics.fps_stability * 100.0,
                  boosted.metrics.fps_stability * 100.0,
                  local.metrics.avg_response_ms,
                  boosted.metrics.avg_response_ms);
    }
    bench::print_rule();
  }
  std::printf(
      "Paper shape: action games gain the most on the Nexus 5 (23->37,\n"
      "22->40), puzzle games barely move (50->52); the LG G5 sees no gain\n"
      "and slightly higher response times.\n");
  return 0;
}
