// Shared helpers for the reproduction benches: canonical session
// configurations, a small parallel session runner, and table printing.
//
// Environment knobs:
//   GB_QUICK=1          shorten all sessions (smoke-test the harness)
//   GB_DURATION=<sec>   override the session duration
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include "apps/workload.h"
#include "device/device_profiles.h"
#include "sim/session.h"

namespace gb::bench {

inline double default_duration(double full_seconds) {
  if (const char* override_s = std::getenv("GB_DURATION")) {
    return std::atof(override_s);
  }
  if (const char* quick = std::getenv("GB_QUICK"); quick && quick[0] == '1') {
    return std::min(full_seconds, 60.0);
  }
  return full_seconds;
}

// Canonical session configuration used across the benches: the §VII-A setup
// (600x480 stream, Shield service device, 150 Mbps WiFi + Bluetooth).
inline sim::SessionConfig paper_config(const apps::WorkloadSpec& workload,
                                       const device::DeviceProfile& phone,
                                       double duration_s) {
  sim::SessionConfig config;
  config.workload = workload;
  config.user_device = phone;
  config.duration_s = duration_s;
  config.seed = 20170605;  // ICDCS'17 :)
  config.gbooster.nominal_width = 600;
  config.gbooster.nominal_height = 480;
  config.service.nominal_width = 600;
  config.service.nominal_height = 480;
  config.service.render_width = 96;
  config.service.render_height = 72;
  config.service.content_sample_every = 8;
  // Streaming quality used by the prototype (the paper's "low-quality
  // graphics setting"): keeps typical demand near the Bluetooth boundary.
  config.service.codec.quality = 70;
  return config;
}

// Runs sessions on a small worker pool (sessions are independent and
// deterministic, so parallel execution does not perturb results).
inline std::vector<sim::SessionResult> run_all(
    std::vector<sim::SessionConfig> configs) {
  std::vector<std::future<sim::SessionResult>> futures;
  futures.reserve(configs.size());
  for (auto& config : configs) {
    futures.push_back(std::async(std::launch::async,
                                 [cfg = std::move(config)] {
                                   return sim::run_session(cfg);
                                 }));
    // Bound concurrency to roughly the host's small core count.
    if (futures.size() % 2 == 0) futures.back().wait();
  }
  std::vector<sim::SessionResult> results;
  results.reserve(futures.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_rule() {
  std::printf(
      "------------------------------------------------------------------\n");
}

}  // namespace gb::bench
