// §V-A reproduction: traffic redundancy elimination.
//
//   - Unoptimized traffic (raw command stream + raw frames) at 600x480 /
//     25 FPS runs to ~200 Mbps;
//   - the LRU command cache removes most command bytes, LZ4 compresses the
//     remainder (paper: ~70% reduction on command streams);
//   - the Turbo codec replaces raw frames with incremental updates at
//     ratios up to ~25:1.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/game_app.h"
#include "bench_util.h"
#include "codec/turbo_codec.h"
#include "compress/command_cache.h"
#include "compress/lz4.h"
#include "gles/direct_backend.h"
#include "wire/recorder.h"

int main() {
  using namespace gb;
  constexpr int kFps = 25;
  constexpr int kFrames = 100;
  constexpr int kW = 600;
  constexpr int kH = 480;

  // Drive G1 through the recorder (commands) and a real backend (pixels).
  std::vector<wire::FrameCommands> frames;
  auto recorder = std::make_unique<wire::CommandRecorder>(
      kW, kH, [&frames](wire::FrameCommands frame) {
        frames.push_back(std::move(frame));
        return true;
      });
  // Pixel path at reduced resolution (scaled by the calibrated exponent).
  gles::DirectBackend backend(150, 120, {});
  apps::GameApp command_app(apps::g1_gta_san_andreas(), *recorder, kW, kH,
                            Rng(3));
  apps::GameApp pixel_app(apps::g1_gta_san_andreas(), backend, 150, 120,
                          Rng(3));
  command_app.setup();
  pixel_app.setup();

  compress::CommandCache cache;
  compress::CacheStats cache_stats;
  codec::TurboEncoder turbo;

  std::size_t raw_cmd_bytes = 0;
  std::size_t lz4_only_bytes = 0;
  std::size_t cached_bytes = 0;
  std::size_t lz4_bytes = 0;
  std::size_t raw_frame_bytes = 0;
  std::size_t turbo_bytes = 0;
  const double scale =
      std::pow(static_cast<double>(kW) * kH / (150.0 * 120.0), 0.79);

  for (int f = 0; f < kFrames; ++f) {
    const double t = 0.3 + f / static_cast<double>(kFps);
    const bool burst = (f % 40) > 35;
    if (f == 30 || f == 70) {
      command_app.trigger_scene_change();
      pixel_app.trigger_scene_change();
    }
    command_app.render_frame(t, burst);
    pixel_app.render_frame(t, burst);
    if (f == 0) continue;  // skip the setup frame in steady-state stats

    const wire::FrameCommands& frame = frames.back();
    raw_cmd_bytes += frame.total_bytes();
    // LZ4 alone on the raw concatenated records (the paper's 70% figure).
    Bytes raw_concat;
    for (const auto& record : frame.records) {
      raw_concat.insert(raw_concat.end(), record.bytes.begin(),
                        record.bytes.end());
    }
    lz4_only_bytes += compress::lz4_compress(raw_concat).size();
    const Bytes after_cache =
        compress::encode_frame_with_cache(frame, cache, cache_stats);
    cached_bytes += after_cache.size();
    lz4_bytes += compress::lz4_compress(after_cache).size();

    raw_frame_bytes += static_cast<std::size_t>(kW) * kH * 4;
    const Bytes encoded = turbo.encode(backend.context().color_buffer());
    turbo_bytes += static_cast<std::size_t>(
        std::max(0.0, static_cast<double>(encoded.size()) - 300.0) * scale +
        300.0);
  }

  const double frames_counted = kFrames - 1;
  const auto mbps = [&](std::size_t bytes) {
    return static_cast<double>(bytes) / frames_counted * kFps * 8.0 / 1e6;
  };

  bench::print_header("SV-A: traffic redundancy elimination (G1, 600x480 @ 25 FPS)");
  std::printf("%-44s %10s %10s\n", "stream", "KB/frame", "Mbps");
  bench::print_rule();
  std::printf("%-44s %10.1f %10.1f\n", "raw command stream",
              raw_cmd_bytes / frames_counted / 1024.0, mbps(raw_cmd_bytes));
  std::printf("%-44s %10.1f %10.1f\n", "  + LZ4 alone (no cache)",
              lz4_only_bytes / frames_counted / 1024.0, mbps(lz4_only_bytes));
  std::printf("%-44s %10.1f %10.1f\n", "  + LRU command cache",
              cached_bytes / frames_counted / 1024.0, mbps(cached_bytes));
  std::printf("%-44s %10.1f %10.1f\n", "  + LZ4",
              lz4_bytes / frames_counted / 1024.0, mbps(lz4_bytes));
  std::printf("%-44s %10.1f %10.1f\n", "raw rendered frames (RGBA)",
              raw_frame_bytes / frames_counted / 1024.0,
              mbps(raw_frame_bytes));
  std::printf("%-44s %10.1f %10.1f\n", "  Turbo incremental codec",
              turbo_bytes / frames_counted / 1024.0, mbps(turbo_bytes));
  bench::print_rule();
  std::printf("unoptimized total: %.0f Mbps (paper: ~200 Mbps)\n",
              mbps(raw_cmd_bytes + raw_frame_bytes));
  std::printf("optimized total:   %.1f Mbps\n",
              mbps(lz4_bytes + turbo_bytes));
  std::printf("LZ4-alone command reduction: %.0f%% (paper: ~70%%)\n",
              100.0 * (1.0 - static_cast<double>(lz4_only_bytes) /
                                 raw_cmd_bytes));
  std::printf("cache+LZ4 command reduction: %.0f%%\n",
              100.0 * (1.0 - static_cast<double>(lz4_bytes) / raw_cmd_bytes));
  std::printf("frame compression ratio: %.1f:1 (paper: up to 25:1)\n",
              static_cast<double>(raw_frame_bytes) / turbo_bytes);
  std::printf("command-cache hit rate: %.0f%%\n",
              cache_stats.hit_rate() * 100.0);
  return 0;
}
