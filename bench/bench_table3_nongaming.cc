// Table III reproduction: non-gaming applications under GBooster — zero FPS
// boost (they already run at the display cap) and energy at 92-94% of local.
#include <cstdio>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace gb;
  const double duration = bench::default_duration(300.0);

  const auto apps_list = apps::non_gaming_apps();
  std::vector<sim::SessionConfig> configs;
  for (const auto& app : apps_list) {
    configs.push_back(bench::paper_config(app, device::nexus5(), duration));
    sim::SessionConfig offload =
        bench::paper_config(app, device::nexus5(), duration);
    offload.service_devices = {device::nvidia_shield()};
    configs.push_back(std::move(offload));
  }
  const auto results = bench::run_all(std::move(configs));

  bench::print_header("Table III: non-gaming apps (Nexus 5)");
  std::printf("%-16s %-18s %-12s %-20s\n", "Application", "FPS local->GB",
              "FPS boost", "normalized energy");
  bench::print_rule();
  for (std::size_t i = 0; i < apps_list.size(); ++i) {
    const auto& local = results[i * 2];
    const auto& boosted = results[i * 2 + 1];
    std::printf("%-16s %5.0f -> %-9.0f %-12.0f %15.1f%%\n",
                apps_list[i].name.c_str(), local.metrics.median_fps,
                boosted.metrics.median_fps,
                boosted.metrics.median_fps - local.metrics.median_fps,
                100.0 * boosted.energy.total() / local.energy.total());
  }
  bench::print_rule();
  std::printf("Paper: 0 FPS boost, energy 92.1%% / 93.6%% / 93.3%% of local\n"
              "(small but real savings from idling the GPU).\n");
  return 0;
}
