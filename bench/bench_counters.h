// Counter-export helpers for the google-benchmark-based benches. Kept
// separate from bench_util.h because <benchmark/benchmark.h> plants a
// static initializer in every including TU, and most benches here are plain
// table printers that do not link the benchmark library.
#pragma once

#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>

#include "runtime/trace.h"
#include "sim/metrics.h"

namespace gb::bench {

// Exports SessionMetrics::stage_breakdown as benchmark counters
// (`stage_<name>_ms` = mean per displayed frame, plus `stage_<name>_p99_ms`
// for the stages that dominate tail latency). The stage means tile the
// issue-to-display interval, so they sum to `issue_to_display_ms`.
inline void report_stage_breakdown(benchmark::State& state,
                                   const sim::SessionMetrics& metrics) {
  if (!metrics.has_stage_breakdown) return;
  state.counters["issue_to_display_ms"] = metrics.avg_issue_to_display_ms;
  for (std::size_t i = 0; i < runtime::kStageCount; ++i) {
    const sim::StageStats& stage = metrics.stage_breakdown[i];
    if (stage.count == 0) continue;
    const std::string name =
        runtime::stage_name(static_cast<runtime::Stage>(i));
    state.counters["stage_" + name + "_ms"] = stage.mean_ms;
    state.counters["stage_" + name + "_p99_ms"] = stage.p99_ms;
  }
}

}  // namespace gb::bench
