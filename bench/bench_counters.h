// Counter-export helpers for the google-benchmark-based benches. Kept
// separate from bench_util.h because <benchmark/benchmark.h> plants a
// static initializer in every including TU, and most benches here are plain
// table printers that do not link the benchmark library.
#pragma once

#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>

#include "runtime/trace.h"
#include "sim/metrics.h"
#include "sim/session.h"

namespace gb::bench {

// Exports SessionMetrics::stage_breakdown as benchmark counters
// (`stage_<name>_ms` = mean per displayed frame, plus `stage_<name>_p99_ms`
// for the stages that dominate tail latency). The stage means tile the
// issue-to-display interval, so they sum to `issue_to_display_ms`.
inline void report_stage_breakdown(benchmark::State& state,
                                   const sim::SessionMetrics& metrics) {
  if (!metrics.has_stage_breakdown) return;
  state.counters["issue_to_display_ms"] = metrics.avg_issue_to_display_ms;
  for (std::size_t i = 0; i < runtime::kStageCount; ++i) {
    const sim::StageStats& stage = metrics.stage_breakdown[i];
    if (stage.count == 0) continue;
    const std::string name =
        runtime::stage_name(static_cast<runtime::Stage>(i));
    state.counters["stage_" + name + "_ms"] = stage.mean_ms;
    state.counters["stage_" + name + "_p99_ms"] = stage.p99_ms;
  }
}

// Exports the session's transport health as benchmark counters (DESIGN.md
// §13): downlink FEC recoveries and the parity overhead the services paid
// for them (absolute and as a fraction of service payload bytes), multipath
// reroutes, and the per-path striping split on the user endpoint. Zeroes
// with FEC/multipath off — the columns exist in every BENCH JSON row so A/B
// diffs line up.
inline void report_transport(benchmark::State& state,
                             const sim::SessionResult& result) {
  state.counters["fec_recovered"] =
      static_cast<double>(result.transport.fec_recovered_chunks);
  state.counters["parity_overhead_b"] =
      static_cast<double>(result.service_transport.fec_parity_bytes);
  const double payload =
      static_cast<double>(result.service_transport.payload_bytes_sent);
  state.counters["parity_overhead_pct"] =
      payload > 0.0
          ? 100.0 *
                static_cast<double>(result.service_transport.fec_parity_bytes) /
                payload
          : 0.0;
  state.counters["path_reroutes"] =
      static_cast<double>(result.transport.path_reroutes +
                          result.service_transport.path_reroutes);
  state.counters["retransmits"] =
      static_cast<double>(result.transport.chunks_retransmitted +
                          result.service_transport.chunks_retransmitted);
  state.counters["path_wifi_chunks"] =
      static_cast<double>(result.user_path_wifi.chunks_sent);
  state.counters["path_bt_chunks"] =
      static_cast<double>(result.user_path_bt.chunks_sent);
}

}  // namespace gb::bench
