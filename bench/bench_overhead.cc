// §VII-G reproduction: GBooster's overheads on the user device.
// Paper: ~47.8 MB average extra memory; CPU usage on G1 rises from 68%
// (local) to 79% (offloaded) — still underutilized.
#include <cstdio>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace gb;
  const double duration = bench::default_duration(240.0);

  const auto games = apps::all_games();
  std::vector<sim::SessionConfig> configs;
  for (const auto& game : games) {
    sim::SessionConfig offload =
        bench::paper_config(game, device::nexus5(), duration);
    offload.service_devices = {device::nvidia_shield()};
    configs.push_back(std::move(offload));
  }
  const auto results = bench::run_all(std::move(configs));

  bench::print_header("SVII-G: memory overhead per game (Nexus 5, offloaded)");
  std::printf("%-4s %-22s %-14s\n", "Id", "Game", "overhead MB");
  bench::print_rule();
  double total_mb = 0.0;
  for (std::size_t g = 0; g < games.size(); ++g) {
    const double mb =
        static_cast<double>(results[g].memory_overhead_bytes) / (1024.0 * 1024.0);
    total_mb += mb;
    std::printf("%-4s %-22s %-14.1f\n", games[g].id.c_str(),
                games[g].name.c_str(), mb);
  }
  bench::print_rule();
  std::printf("average: %.1f MB (paper: 47.8 MB; dominated by the wrapper's\n"
              "shadow context and LRU caches)\n\n",
              total_mb / games.size());

  // CPU overhead on the heaviest game.
  sim::SessionConfig local =
      bench::paper_config(games[0], device::nexus5(), duration);
  const sim::SessionResult local_result = sim::run_session(local);
  bench::print_header("SVII-G: CPU usage, G1 on the Nexus 5");
  std::printf("local:     %.0f%%   (paper: 68%%)\n",
              local_result.cpu_usage_percent);
  std::printf("offloaded: %.0f%%   (paper: 79%%)\n",
              results[0].cpu_usage_percent);
  std::printf("offload CPU work: serialize %.1f s + decode %.1f s over %.0f s\n",
              results[0].gbooster.serialize_seconds,
              results[0].gbooster.decode_seconds, duration);
  return 0;
}
