// Fig. 1 reproduction: GPU frequency and temperature trace of an LG G4
// running a GTA San Andreas-class load. The paper's trace: ~600 MHz for the
// first ~10 minutes, then the thermal governor collapses the frequency to
// ~100 MHz and the part stays hot for the rest of the session.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace gb;
  const double duration = bench::default_duration(1500.0);  // 25 minutes

  sim::SessionConfig config = bench::paper_config(
      apps::g1_gta_san_andreas(), device::lg_g4(), duration);
  config.collect_gpu_trace = true;
  const sim::SessionResult result = sim::run_session(config);

  bench::print_header("Fig. 1: GPU frequency trace (LG G4, G1-class load)");
  std::printf("%-10s %-12s %-12s\n", "t (min)", "freq (MHz)", "temp (C)");
  bench::print_rule();
  double first_throttle_s = -1.0;
  for (std::size_t i = 0; i < result.gpu_frequency_trace.size(); ++i) {
    const auto [t, freq] = result.gpu_frequency_trace[i];
    const double temp = result.gpu_temperature_trace[i].second;
    if (first_throttle_s < 0 && freq < 300.0) first_throttle_s = t;
    // Print one row per 30 simulated seconds.
    if (static_cast<long>(t) % 30 == 0) {
      std::printf("%-10.1f %-12.0f %-12.1f\n", t / 60.0, freq, temp);
    }
  }
  bench::print_rule();
  if (first_throttle_s >= 0) {
    std::printf("First throttle event at %.1f min (paper: ~10 min).\n",
                first_throttle_s / 60.0);
  } else {
    std::printf("No throttle event within %.1f min.\n", duration / 60.0);
  }
  std::printf("Local median FPS over the session: %.1f\n",
              result.metrics.median_fps);
  return 0;
}
