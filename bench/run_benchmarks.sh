#!/usr/bin/env bash
# Runs the Google-Benchmark-based speed benchmarks and writes one JSON file
# per binary into an output directory (default: bench-results/).
#
#   bench/run_benchmarks.sh [build-dir] [out-dir]
#
# The build directory defaults to build-bench/, a dedicated Release tree
# this script configures itself (the default build/ is typically a debug
# tree, and debug numbers are meaningless — historically they got pasted
# into EXPERIMENTS.md by accident). Passing an explicit build-dir skips the
# configure step but NOT the check: the script refuses to publish results
# from a tree whose CMAKE_BUILD_TYPE is not Release.
#
# JSON output (--benchmark_format=json) is the stable machine-readable
# interface; EXPERIMENTS.md quotes numbers from these files. Each result is
# additionally copied to BENCH_<name>.json at the repository root so the
# latest numbers ride along with the tree (and diffs show when they move).
#
# Session benches run with the pipeline tracer enabled and export the
# per-stage latency breakdown as counters: `issue_to_display_ms` plus
# `stage_<name>_ms` / `stage_<name>_p99_ms` for each pipeline stage
# (serialize, uplink, remote_exec, turbo_encode, downlink, decode, present,
# local_render). The stage means tile the issue-to-display interval, so they
# sum to `issue_to_display_ms` (see DESIGN.md §9). bench_parallel_pipeline
# additionally exports the TBDR rasterizer's tile/early-Z stage counters.
# bench_fault_recovery and bench_overload also export the DESIGN.md §13
# transport columns (`fec_recovered`, `parity_overhead_b/_pct`,
# `path_reroutes`, `path_wifi_chunks`/`path_bt_chunks`, `retransmits`);
# bench_fault_recovery's BM_TransportComparison rows are the pure-ARQ vs
# FEC+multipath A/B quoted in EXPERIMENTS.md. bench_dedup's shared=0/1 rows
# are the DESIGN.md §14 second-session cold-start A/B. bench_fleet's
# cold=0/1 rows are the DESIGN.md §15 live-migration vs cold-restart A/B
# (`blackout_ms` / `frames_lost`), and its BM_FleetChurn rows report fleet
# placement quality under session churn.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-build-bench}"
out_dir="${2:-bench-results}"

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

if [[ ! -d "${build_dir}" || ! -f "${build_dir}/CMakeCache.txt" ]]; then
  echo "configuring Release benchmark tree in ${build_dir} ..." >&2
  cmake -B "${build_dir}" -S "${repo_root}" \
        -DCMAKE_BUILD_TYPE=Release >/dev/null
fi

build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
                  "${build_dir}/CMakeCache.txt")"
if [[ "${build_type}" != "Release" ]]; then
  echo "error: ${build_dir} is a '${build_type:-<unset>}' tree; benchmarks" >&2
  echo "must come from a Release build. Use the default build-bench dir or" >&2
  echo "reconfigure with -DCMAKE_BUILD_TYPE=Release." >&2
  exit 2
fi

echo "building benchmarks (${build_type}) ..." >&2
cmake --build "${build_dir}" -j "${JOBS}" >/dev/null

mkdir -p "${out_dir}"

benches=(bench_codec_speed bench_parallel_pipeline bench_fault_recovery
         bench_overload bench_dedup bench_fleet)

for bench in "${benches[@]}"; do
  bin="${build_dir}/bench/${bench}"
  if [[ ! -x "${bin}" ]]; then
    echo "skip: ${bin} not built" >&2
    continue
  fi
  echo "running ${bench} ..." >&2
  "${bin}" --benchmark_format=json \
           --benchmark_out="${out_dir}/${bench}.json" \
           --benchmark_out_format=json >/dev/null
  cp "${out_dir}/${bench}.json" "${repo_root}/BENCH_${bench#bench_}.json"
  echo "wrote ${out_dir}/${bench}.json (copied to BENCH_${bench#bench_}.json)" >&2
done
