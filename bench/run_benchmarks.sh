#!/usr/bin/env bash
# Runs the Google-Benchmark-based speed benchmarks and writes one JSON file
# per binary into an output directory (default: bench-results/).
#
#   bench/run_benchmarks.sh [build-dir] [out-dir]
#
# JSON output (--benchmark_format=json) is the stable machine-readable
# interface; EXPERIMENTS.md quotes numbers from these files. Each result is
# additionally copied to BENCH_<name>.json at the repository root so the
# latest numbers ride along with the tree (and diffs show when they move).
#
# Session benches run with the pipeline tracer enabled and export the
# per-stage latency breakdown as counters: `issue_to_display_ms` plus
# `stage_<name>_ms` / `stage_<name>_p99_ms` for each pipeline stage
# (serialize, uplink, remote_exec, turbo_encode, downlink, decode, present,
# local_render). The stage means tile the issue-to-display interval, so they
# sum to `issue_to_display_ms` (see DESIGN.md §9).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-build}"
out_dir="${2:-bench-results}"
mkdir -p "${out_dir}"

benches=(bench_codec_speed bench_parallel_pipeline bench_fault_recovery
         bench_overload)

for bench in "${benches[@]}"; do
  bin="${build_dir}/bench/${bench}"
  if [[ ! -x "${bin}" ]]; then
    echo "skip: ${bin} not built" >&2
    continue
  fi
  echo "running ${bench} ..." >&2
  "${bin}" --benchmark_format=json \
           --benchmark_out="${out_dir}/${bench}.json" \
           --benchmark_out_format=json >/dev/null
  cp "${out_dir}/${bench}.json" "${repo_root}/BENCH_${bench#bench_}.json"
  echo "wrote ${out_dir}/${bench}.json (copied to BENCH_${bench#bench_}.json)" >&2
done
