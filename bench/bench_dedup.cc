// Cross-session shared-store dedup benchmark (DESIGN.md §14): what the
// two-tier command cache buys the *second* session of an app.
//
// BM_DedupColdStart runs two back-to-back sessions of G2 against one
// service-side SharedStoreRegistry and reports the second (cold-start)
// session's uplink. `shared=0` is the baseline — the store exists but no
// session joins it, so every texture/shader/static-state record is uploaded
// again from scratch. `shared=1` joins with the app id: the cold-start
// upload collapses into kSharedRef records against the first session's
// residue. Headline counters:
//
//   cold_bytes_mb    second-session uplink payload over the short window
//   cold_uplink_ms   WiFi airtime that payload costs — the cold-start
//                    transfer time the user waits through
//
// BM_DedupMultiUser scales same-app users on one service device and reports
// the total uplink — with the shared store, aggregate bytes grow sub-linearly
// in the user count because each later joiner refs the first upload.
//
//   ./bench_dedup                      # console table
//   ./bench_dedup --benchmark_format=json
//
// Environment knobs: GB_QUICK=1 / GB_DURATION=<sec> (see bench_util.h).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_counters.h"
#include "bench_util.h"
#include "compress/shared_store.h"
#include "net/radio.h"
#include "sim/multiuser.h"

using namespace gb;

namespace {

constexpr std::uint64_t kAppId = 0x6b2;  // "G2"

sim::SessionConfig dedup_config(
    bool shared, double duration_s,
    const std::shared_ptr<compress::SharedStoreRegistry>& registry) {
  sim::SessionConfig config = bench::paper_config(
      apps::g2_modern_combat(), device::nexus5(), duration_s);
  config.service_devices.push_back(device::nvidia_shield());
  config.service.shared_store = registry;
  if (shared) {
    config.gbooster.shared_dedup = true;
    config.gbooster.app_id = kAppId;
  }
  return config;
}

void BM_DedupColdStart(benchmark::State& state) {
  const bool shared = state.range(0) != 0;
  // The warm session runs long enough to stream G2's full working set into
  // the store; the cold window is short so the second session's numbers are
  // dominated by cold-start uploads, not steady-state uniforms.
  const double warm_s = bench::default_duration(20.0);
  // Just long enough to cover the setup upload plus the first second of
  // play: the cold-start window the user actually waits through. Longer
  // windows dilute the A/B with steady-state uniform traffic.
  const double cold_s = 1.0;
  sim::SessionResult warm;
  sim::SessionResult cold;
  std::size_t store_kb = 0;
  for (auto _ : state) {
    auto registry = std::make_shared<compress::SharedStoreRegistry>();
    warm = sim::run_session(dedup_config(shared, warm_s, registry));
    cold = sim::run_session(dedup_config(shared, cold_s, registry));
    store_kb = registry->store_for(kAppId).resident_bytes() / 1024;
  }
  const core::GBoosterStats& gb = cold.gbooster;
  state.counters["cold_bytes_mb"] = static_cast<double>(gb.bytes_sent) / 1e6;
  // The transfer time the cold-start upload costs the player: airtime for
  // the payload on the §VII-A WiFi link. Pack/compress CPU is reported
  // separately — the client still serializes and hashes every record, so
  // that term is invariant under dedup by design.
  const double wifi_bps = net::wifi_radio_config().bandwidth_bps;
  state.counters["cold_uplink_ms"] =
      static_cast<double>(gb.bytes_sent) * 8.0 / wifi_bps * 1e3;
  state.counters["cold_serialize_ms"] = gb.serialize_seconds * 1e3;
  state.counters["cold_fps"] = cold.metrics.median_fps;
  state.counters["shared_hits"] = static_cast<double>(
      gb.render_cache.shared_hits + gb.state_cache.shared_hits);
  state.counters["manifest_entries"] = static_cast<double>(gb.manifest_entries);
  state.counters["manifest_kb"] = static_cast<double>(gb.manifest_bytes) / 1e3;
  state.counters["join_hold_frames"] =
      static_cast<double>(gb.frames_held_for_manifest);
  state.counters["join_wait_ms"] = gb.manifest_wait_ms;
  state.counters["warm_bytes_mb"] =
      static_cast<double>(warm.gbooster.bytes_sent) / 1e6;
  state.counters["store_kb"] = static_cast<double>(store_kb);
}

void BM_DedupMultiUser(benchmark::State& state) {
  const bool shared = state.range(0) != 0;
  const int user_count = static_cast<int>(state.range(1));
  const double duration_s = bench::default_duration(20.0);
  sim::MultiUserResult result;
  for (auto _ : state) {
    sim::MultiUserConfig config;
    config.service_device = device::nvidia_shield();
    config.duration_s = duration_s;
    config.seed = 20170605;
    config.shared_dedup = shared;
    for (int u = 0; u < user_count; ++u) {
      sim::MultiUserParticipant participant;
      participant.workload = apps::g2_modern_combat();
      participant.phone = device::nexus5();
      participant.app_id = kAppId;
      // Stagger joins so each user meets a store its predecessors filled.
      participant.join_delay_s = u * 1.5;
      config.users.push_back(participant);
    }
    result = sim::run_multiuser_session(config);
  }
  std::uint64_t total_bytes = 0;
  std::uint64_t total_shared_hits = 0;
  for (const std::uint64_t b : result.bytes_sent_per_user) total_bytes += b;
  for (const std::uint64_t h : result.shared_hits_per_user) {
    total_shared_hits += h;
  }
  state.counters["uplink_total_mb"] = static_cast<double>(total_bytes) / 1e6;
  state.counters["uplink_per_user_mb"] =
      static_cast<double>(total_bytes) / 1e6 / user_count;
  state.counters["shared_hits"] = static_cast<double>(total_shared_hits);
  state.counters["store_kb"] =
      static_cast<double>(result.shared_store_resident_bytes) / 1e3;
  state.counters["mean_latency_ms"] = result.mean_latency_ms.empty()
                                          ? 0.0
                                          : result.mean_latency_ms.back();
}

}  // namespace

BENCHMARK(BM_DedupColdStart)
    ->ArgNames({"shared"})
    ->ArgsProduct({{0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_DedupMultiUser)
    ->ArgNames({"shared", "users"})
    ->ArgsProduct({{0, 1}, {1, 2, 3}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
