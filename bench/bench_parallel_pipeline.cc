// Thread-scaling benchmark for the parallel frame pipeline: Turbo encode,
// Turbo decode, tile-binned (TBDR) vs. row-band rasterization, and fused
// vs. barrier render+encode at 1/2/4/8 worker threads.
//
//   ./bench_parallel_pipeline                      # console table
//   ./bench_parallel_pipeline --benchmark_format=json
//
// On a single-core host the >1-thread rows measure scheduling overhead, not
// speedup; record results from a multi-core machine for scaling claims.
#include <benchmark/benchmark.h>

#include <vector>

#include "apps/game_app.h"
#include "bench_counters.h"
#include "bench_util.h"
#include "codec/turbo_codec.h"
#include "common/rng.h"
#include "core/tile_fusion.h"
#include "gles/direct_backend.h"

using namespace gb;

namespace {

constexpr int kWidth = 640;
constexpr int kHeight = 480;

// Pre-renders a short animated sequence once per process.
const std::vector<Image>& frames() {
  static const std::vector<Image> kFrames = [] {
    gles::DirectBackend backend(kWidth, kHeight, {});
    apps::GameApp app(apps::g2_modern_combat(), backend, kWidth, kHeight,
                      Rng(9));
    app.setup();
    std::vector<Image> out;
    for (int f = 0; f < 8; ++f) {
      app.render_frame(0.3 + f * 0.04, false);
      out.push_back(backend.context().color_buffer());
    }
    return out;
  }();
  return kFrames;
}

void report_throughput(benchmark::State& state, std::size_t pixels) {
  state.counters["MP/s"] = benchmark::Counter(
      static_cast<double>(pixels) / 1e6, benchmark::Counter::kIsRate);
}

void BM_ParallelEncode(benchmark::State& state) {
  const auto& seq = frames();
  codec::TurboConfig config;
  config.threads = static_cast<int>(state.range(0));
  codec::TurboEncoder encoder(config);
  std::size_t i = 0;
  std::size_t pixels = 0;
  for (auto _ : state) {
    const Bytes out = encoder.encode(seq[i++ % seq.size()]);
    benchmark::DoNotOptimize(out.data());
    pixels += seq[0].pixel_count();
  }
  report_throughput(state, pixels);
}
BENCHMARK(BM_ParallelEncode)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_ParallelDecode(benchmark::State& state) {
  const auto& seq = frames();
  codec::TurboEncoder encoder;
  std::vector<Bytes> encoded;
  for (const Image& frame : seq) encoded.push_back(encoder.encode(frame));
  codec::TurboDecoder decoder(static_cast<int>(state.range(0)));
  std::size_t i = 0;
  std::size_t pixels = 0;
  for (auto _ : state) {
    const auto out = decoder.decode(encoded[i++ % encoded.size()]);
    benchmark::DoNotOptimize(out);
    pixels += seq[0].pixel_count();
  }
  report_throughput(state, pixels);
}
BENCHMARK(BM_ParallelDecode)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Rasterizes the benchmark scene with either fragment-stage scheduler and
// reports throughput plus the TBDR stage counters (per frame): tiles with
// geometry vs. skipped empty tiles, and fragments the early-Z winner pass
// eliminated without shading. Both modes produce byte-identical pixels
// (tests/test_tbdr.cc), so the MP/s columns compare like for like.
void run_raster_bench(benchmark::State& state, gles::RasterMode mode) {
  gles::DirectBackend backend(kWidth, kHeight, {});
  backend.context().set_raster_mode(mode);
  backend.context().set_raster_threads(static_cast<int>(state.range(0)));
  apps::GameApp app(apps::g2_modern_combat(), backend, kWidth, kHeight,
                    Rng(9));
  app.setup();
  backend.context().mutable_stats().reset();
  double t = 0.3;
  std::size_t pixels = 0;
  std::size_t iterations = 0;
  for (auto _ : state) {
    app.render_frame(t, false);
    t += 0.04;
    benchmark::DoNotOptimize(backend.context().color_buffer().data());
    pixels += backend.context().color_buffer().pixel_count();
    ++iterations;
  }
  report_throughput(state, pixels);
  const gles::RenderStats& stats = backend.context().stats();
  const double frames = static_cast<double>(iterations > 0 ? iterations : 1);
  state.counters["tiles_shaded/frame"] =
      static_cast<double>(stats.tiles_shaded) / frames;
  state.counters["tiles_empty/frame"] =
      static_cast<double>(stats.tiles_empty) / frames;
  state.counters["early_z_culled/frame"] =
      static_cast<double>(stats.fragments_early_z_culled) / frames;
}

void BM_ParallelRaster(benchmark::State& state) {
  run_raster_bench(state, gles::RasterMode::kTileBinned);
}
BENCHMARK(BM_ParallelRaster)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_RowBandRaster(benchmark::State& state) {
  run_raster_bench(state, gles::RasterMode::kRowBand);
}
BENCHMARK(BM_RowBandRaster)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Render + encode as the service runtime runs them: the unfused baseline
// rasterizes the whole frame, hits the full-frame barrier, then encodes;
// the fused path hands each finished 16x16 render tile straight to the
// encoder's per-tile pass (core/tile_fusion.h). Same bitstream either way.
void run_render_encode_bench(benchmark::State& state, bool fused) {
  gles::DirectBackend backend(kWidth, kHeight, {});
  backend.context().set_raster_threads(static_cast<int>(state.range(0)));
  apps::GameApp app(apps::g2_modern_combat(), backend, kWidth, kHeight,
                    Rng(9));
  app.setup();
  codec::TurboConfig config;
  config.threads = static_cast<int>(state.range(0));
  codec::TurboEncoder encoder(config);
  double t = 0.3;
  std::size_t pixels = 0;
  for (auto _ : state) {
    app.render_frame(t, false);
    t += 0.04;
    const Bytes out =
        fused ? core::encode_frame_fused(backend.context(), encoder)
              : encoder.encode(backend.context().color_buffer());
    benchmark::DoNotOptimize(out.data());
    pixels += backend.context().color_buffer().pixel_count();
  }
  report_throughput(state, pixels);
}

void BM_RenderThenEncode(benchmark::State& state) {
  run_render_encode_bench(state, /*fused=*/false);
}
BENCHMARK(BM_RenderThenEncode)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_FusedRenderEncode(benchmark::State& state) {
  run_render_encode_bench(state, /*fused=*/true);
}
BENCHMARK(BM_FusedRenderEncode)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// End-to-end offload session with the per-stage latency breakdown enabled:
// where the frame time goes (serialize / uplink / remote-exec / turbo-encode
// / downlink / decode / present) as the service device's worker-thread count
// scales. The virtual-clock stage means must be identical across thread
// counts (host parallelism changes wall time only); the wall-time column is
// what scales.
void BM_OffloadSessionStages(benchmark::State& state) {
  const double duration_s = bench::default_duration(20.0);
  sim::SessionConfig config = bench::paper_config(
      apps::g1_gta_san_andreas(), device::nexus5(), duration_s);
  config.service_devices.push_back(device::nvidia_shield());
  config.service.worker_threads = static_cast<int>(state.range(0));
  config.collect_stage_breakdown = true;
  sim::SessionResult result;
  for (auto _ : state) {
    result = sim::run_session(config);
  }
  state.counters["fps"] = result.metrics.median_fps;
  bench::report_stage_breakdown(state, result.metrics);
}
BENCHMARK(BM_OffloadSessionStages)
    ->ArgName("workers")
    ->Arg(1)
    ->Arg(4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Overhead guard for the tracing layer itself: the same session with
// tracing off (null tracer — every instrumentation site is one pointer
// compare) vs. on. Compare the wall times of the two rows to bound the
// enabled-mode cost; a -DGB_DISABLE_TRACING build folds even the compare
// away.
void BM_OffloadSessionTracing(benchmark::State& state) {
  const bool traced = state.range(0) != 0;
  const double duration_s = bench::default_duration(20.0);
  sim::SessionConfig config = bench::paper_config(
      apps::g1_gta_san_andreas(), device::nexus5(), duration_s);
  config.service_devices.push_back(device::nvidia_shield());
  config.collect_stage_breakdown = traced;
  sim::SessionResult result;
  for (auto _ : state) {
    result = sim::run_session(config);
  }
  state.counters["fps"] = result.metrics.median_fps;
}
BENCHMARK(BM_OffloadSessionTracing)
    ->ArgName("traced")
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
