// Thread-scaling benchmark for the parallel frame pipeline: Turbo encode,
// Turbo decode, and row-band rasterization at 1/2/4/8 worker threads.
//
//   ./bench_parallel_pipeline                      # console table
//   ./bench_parallel_pipeline --benchmark_format=json
//
// On a single-core host the >1-thread rows measure scheduling overhead, not
// speedup; record results from a multi-core machine for scaling claims.
#include <benchmark/benchmark.h>

#include <vector>

#include "apps/game_app.h"
#include "bench_counters.h"
#include "bench_util.h"
#include "codec/turbo_codec.h"
#include "common/rng.h"
#include "gles/direct_backend.h"

using namespace gb;

namespace {

constexpr int kWidth = 640;
constexpr int kHeight = 480;

// Pre-renders a short animated sequence once per process.
const std::vector<Image>& frames() {
  static const std::vector<Image> kFrames = [] {
    gles::DirectBackend backend(kWidth, kHeight, {});
    apps::GameApp app(apps::g2_modern_combat(), backend, kWidth, kHeight,
                      Rng(9));
    app.setup();
    std::vector<Image> out;
    for (int f = 0; f < 8; ++f) {
      app.render_frame(0.3 + f * 0.04, false);
      out.push_back(backend.context().color_buffer());
    }
    return out;
  }();
  return kFrames;
}

void report_throughput(benchmark::State& state, std::size_t pixels) {
  state.counters["MP/s"] = benchmark::Counter(
      static_cast<double>(pixels) / 1e6, benchmark::Counter::kIsRate);
}

void BM_ParallelEncode(benchmark::State& state) {
  const auto& seq = frames();
  codec::TurboConfig config;
  config.threads = static_cast<int>(state.range(0));
  codec::TurboEncoder encoder(config);
  std::size_t i = 0;
  std::size_t pixels = 0;
  for (auto _ : state) {
    const Bytes out = encoder.encode(seq[i++ % seq.size()]);
    benchmark::DoNotOptimize(out.data());
    pixels += seq[0].pixel_count();
  }
  report_throughput(state, pixels);
}
BENCHMARK(BM_ParallelEncode)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_ParallelDecode(benchmark::State& state) {
  const auto& seq = frames();
  codec::TurboEncoder encoder;
  std::vector<Bytes> encoded;
  for (const Image& frame : seq) encoded.push_back(encoder.encode(frame));
  codec::TurboDecoder decoder(static_cast<int>(state.range(0)));
  std::size_t i = 0;
  std::size_t pixels = 0;
  for (auto _ : state) {
    const auto out = decoder.decode(encoded[i++ % encoded.size()]);
    benchmark::DoNotOptimize(out);
    pixels += seq[0].pixel_count();
  }
  report_throughput(state, pixels);
}
BENCHMARK(BM_ParallelDecode)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_ParallelRaster(benchmark::State& state) {
  gles::DirectBackend backend(kWidth, kHeight, {});
  backend.context().set_raster_threads(static_cast<int>(state.range(0)));
  apps::GameApp app(apps::g2_modern_combat(), backend, kWidth, kHeight,
                    Rng(9));
  app.setup();
  double t = 0.3;
  std::size_t pixels = 0;
  for (auto _ : state) {
    app.render_frame(t, false);
    t += 0.04;
    benchmark::DoNotOptimize(backend.context().color_buffer().data());
    pixels += backend.context().color_buffer().pixel_count();
  }
  report_throughput(state, pixels);
}
BENCHMARK(BM_ParallelRaster)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// End-to-end offload session with the per-stage latency breakdown enabled:
// where the frame time goes (serialize / uplink / remote-exec / turbo-encode
// / downlink / decode / present) as the service device's worker-thread count
// scales. The virtual-clock stage means must be identical across thread
// counts (host parallelism changes wall time only); the wall-time column is
// what scales.
void BM_OffloadSessionStages(benchmark::State& state) {
  const double duration_s = bench::default_duration(20.0);
  sim::SessionConfig config = bench::paper_config(
      apps::g1_gta_san_andreas(), device::nexus5(), duration_s);
  config.service_devices.push_back(device::nvidia_shield());
  config.service.worker_threads = static_cast<int>(state.range(0));
  config.collect_stage_breakdown = true;
  sim::SessionResult result;
  for (auto _ : state) {
    result = sim::run_session(config);
  }
  state.counters["fps"] = result.metrics.median_fps;
  bench::report_stage_breakdown(state, result.metrics);
}
BENCHMARK(BM_OffloadSessionStages)
    ->ArgName("workers")
    ->Arg(1)
    ->Arg(4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Overhead guard for the tracing layer itself: the same session with
// tracing off (null tracer — every instrumentation site is one pointer
// compare) vs. on. Compare the wall times of the two rows to bound the
// enabled-mode cost; a -DGB_DISABLE_TRACING build folds even the compare
// away.
void BM_OffloadSessionTracing(benchmark::State& state) {
  const bool traced = state.range(0) != 0;
  const double duration_s = bench::default_duration(20.0);
  sim::SessionConfig config = bench::paper_config(
      apps::g1_gta_san_andreas(), device::nexus5(), duration_s);
  config.service_devices.push_back(device::nvidia_shield());
  config.collect_stage_breakdown = traced;
  sim::SessionResult result;
  for (auto _ : state) {
    result = sim::run_session(config);
  }
  state.counters["fps"] = result.metrics.median_fps;
}
BENCHMARK(BM_OffloadSessionTracing)
    ->ArgName("traced")
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
