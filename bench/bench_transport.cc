// §IV-B ablation: the reliable-UDP transport against a TCP latency model
// under increasing packet loss. The paper rejects TCP for its ~40 ms
// inherent delay; the ARQ transport's measured delivery latency stays far
// below it until loss gets extreme.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "net/medium.h"
#include "net/reliable.h"
#include "net/tcp_model.h"
#include "runtime/event_loop.h"

namespace {

using namespace gb;

// Measures mean delivery latency of 60 KB messages (one frame's worth of
// compressed commands + encoded image) over a lossy 150 Mbps link.
double measure_arq_latency_ms(double loss_rate, std::uint64_t seed) {
  EventLoop loop;
  net::MediumConfig mc;
  mc.loss_rate = loss_rate;
  mc.propagation = ms(0.4);
  mc.jitter_ms = 0.2;
  net::Medium medium(loop, mc, Rng(seed), "wifi");
  net::RadioInterface radio(loop, net::wifi_radio_config(), "radio");
  net::ReliableEndpoint sender(loop, 1);
  net::ReliableEndpoint receiver(loop, 2);
  sender.bind(medium, &radio);
  receiver.bind(medium, nullptr);

  double total_ms = 0.0;
  int delivered = 0;
  SimTime sent_at;
  receiver.set_handler([&](net::NodeId, net::NodeId, Bytes) {
    total_ms += (loop.now() - sent_at).ms();
    ++delivered;
  });
  constexpr int kMessages = 200;
  for (int i = 0; i < kMessages; ++i) {
    sent_at = loop.now();
    sender.send(2, Bytes(60000, static_cast<std::uint8_t>(i)));
    loop.run_until(loop.now() + seconds(5.0));  // drain before the next one
  }
  return delivered > 0 ? total_ms / delivered : -1.0;
}

}  // namespace

int main() {
  using namespace gb;
  bench::print_header("SIV-B: reliable-UDP transport vs TCP model (60 KB msgs)");
  std::printf("%-12s %-18s %-18s\n", "loss rate", "ARQ measured (ms)",
              "TCP model (ms)");
  bench::print_rule();
  net::TcpModelConfig tcp;
  for (const double loss : {0.0, 0.01, 0.05, 0.1, 0.2}) {
    const double arq = measure_arq_latency_ms(loss, 11);
    const double tcp_ms = net::tcp_expected_latency(60000, tcp, loss).ms();
    std::printf("%-12.2f %-18.1f %-18.1f\n", loss, arq, tcp_ms);
  }
  bench::print_rule();
  std::printf("Paper: TCP's delayed-ACK machinery imposes ~40 ms in general\n"
              "settings and grows quickly under loss; the application-layer\n"
              "ARQ stays near the serialization+propagation floor.\n");
  return 0;
}
