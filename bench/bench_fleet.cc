// Fleet scale-out and live-migration benchmark (DESIGN.md §15).
//
// BM_FleetMigration is the A/B the migration subsystem exists for: one G1
// session, one scripted device hand-off at t=4 s. `cold=0` is snapshot-driven
// live migration (drain + GL-state snapshot + cache-mirror transfer, no
// state-epoch reset); `cold=1` is the disconnect/reconnect-from-scratch
// baseline. Headline counters:
//
//   blackout_ms   longest issue-to-display gap a viewer would see around
//                 the hand-off (straddling gap included)
//   frames_lost   frames lost for good from the event to run end
//                 (presenter reclaims + governor void sheds)
//
// BM_FleetChurn scales same-app sessions across a two-device fleet with
// staggered arrivals/departures and reports placement quality: how evenly
// Eq. 4 + queue-depth + tenancy spreads sessions, and the latency tail the
// tenants see.
//
//   ./bench_fleet                      # console table
//   ./bench_fleet --benchmark_format=json
//
// Environment knobs: GB_QUICK=1 / GB_DURATION=<sec> (see bench_util.h).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>

#include "bench_util.h"
#include "sim/fleet.h"

using namespace gb;

namespace {

sim::FleetScenarioConfig fleet_config(double duration_s, int devices) {
  sim::FleetScenarioConfig config;
  for (int d = 0; d < devices; ++d) {
    config.devices.push_back(device::nvidia_shield());
  }
  config.duration_s = duration_s;
  config.seed = 20170605;
  return config;
}

sim::FleetUserSpec fleet_user(const apps::WorkloadSpec& workload,
                              double arrive_s = 0.0, double depart_s = 0.0) {
  sim::FleetUserSpec spec;
  spec.workload = workload;
  spec.phone = device::lg_g5();
  spec.arrive_s = arrive_s;
  spec.depart_s = depart_s;
  return spec;
}

void BM_FleetMigration(benchmark::State& state) {
  const bool cold = state.range(0) != 0;
  const double duration_s = bench::default_duration(12.0);
  sim::FleetScenarioResult result;
  for (auto _ : state) {
    sim::FleetScenarioConfig config = fleet_config(duration_s, 2);
    config.users.push_back(fleet_user(apps::g1_gta_san_andreas()));
    // Cold leaves the slot dark with no healthy device; the governor sheds
    // those frames void instead of crashing the legacy pick (and gives both
    // arms the identical pipeline).
    config.qos.enabled = true;
    sim::FleetMigrationSpec migration;
    migration.user_index = 0;
    migration.at_s = std::min(4.0, duration_s / 3.0);
    migration.cold = cold;
    config.migrations.push_back(migration);
    result = sim::run_fleet_scenario(config);
  }
  const sim::FleetMigrationOutcome& outcome = result.migrations.at(0);
  state.counters["blackout_ms"] = outcome.blackout_ms;
  state.counters["frames_lost"] = static_cast<double>(outcome.frames_lost);
  state.counters["frames_displayed"] =
      static_cast<double>(result.frames_displayed_per_user.at(0));
  state.counters["mean_latency_ms"] = result.mean_latency_ms.at(0);
  state.counters["p95_ms"] = result.p95_latency_ms.at(0);
  state.counters["p99_ms"] = result.p99_latency_ms.at(0);
}

void BM_FleetChurn(benchmark::State& state) {
  const int user_count = static_cast<int>(state.range(0));
  const double duration_s = bench::default_duration(15.0);
  sim::FleetScenarioResult result;
  for (auto _ : state) {
    sim::FleetScenarioConfig config = fleet_config(duration_s, 2);
    for (int u = 0; u < user_count; ++u) {
      // Staggered arrivals; every other session departs mid-run, so the
      // placement registry sees both growth and release.
      const double arrive_s = u * 0.8;
      const double depart_s =
          (u % 2 == 1) ? duration_s * 0.6 + u * 0.3 : 0.0;
      config.users.push_back(
          fleet_user(apps::g5_candy_crush(), arrive_s, depart_s));
    }
    result = sim::run_fleet_scenario(config);
  }
  std::uint64_t displayed = 0;
  for (const std::uint64_t f : result.frames_displayed_per_user) {
    displayed += f;
  }
  double worst_p95 = 0.0;
  for (const double p : result.p95_latency_ms) {
    worst_p95 = std::max(worst_p95, p);
  }
  // Tenancy skew: max sessions any device ever carried minus the even
  // share — 0 means the tenancy term spread placements perfectly.
  const double even_share =
      static_cast<double>(result.fleet.sessions_placed) /
      static_cast<double>(result.final_sessions_per_device.size());
  state.counters["frames_displayed"] = static_cast<double>(displayed);
  state.counters["worst_p95_ms"] = worst_p95;
  state.counters["placements"] =
      static_cast<double>(result.fleet.sessions_placed);
  state.counters["rejected"] =
      static_cast<double>(result.fleet.placements_rejected);
  state.counters["released"] =
      static_cast<double>(result.fleet.sessions_released);
  state.counters["even_share"] = even_share;
  state.counters["busy0"] = result.device_busy_fraction.at(0);
  state.counters["busy1"] = result.device_busy_fraction.at(1);
}

}  // namespace

BENCHMARK(BM_FleetMigration)
    ->ArgNames({"cold"})
    ->ArgsProduct({{0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_FleetChurn)
    ->ArgNames({"users"})
    ->ArgsProduct({{2, 4, 6}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
