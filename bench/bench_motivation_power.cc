// §II motivation experiment: render a static triangle at the Android default
// 60 FPS on the three mainstream phones and compare GPU vs CPU power — the
// paper measures ~3 W for the GPU, roughly 5x the CPU's draw.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace gb;
  const double duration = bench::default_duration(120.0);

  bench::print_header(
      "SII motivation: static triangle @60 FPS, GPU vs CPU power");
  std::printf("%-22s %-12s %-12s %-8s\n", "Phone", "GPU (W)", "CPU (W)",
              "ratio");
  bench::print_rule();

  for (const auto& phone :
       {device::galaxy_s5(), device::lg_g4(), device::lg_g5()}) {
    // The triangle "benchmark app": trivial commands, but the driver keeps
    // the GPU busy at vsync cadence — model as a near-saturating fill load
    // pinned to 60 FPS (the paper's test program renders at the display
    // rate with vsync, so the GPU never sleeps between frames).
    apps::WorkloadSpec triangle;
    triangle.id = "TRI";
    triangle.name = "GLES triangle";
    triangle.genre = apps::Genre::kUtility;
    triangle.draw_calls_per_frame = 1;
    triangle.resident_textures = 1;
    triangle.textures_per_frame = 1;
    triangle.mesh_resolution = 1;
    triangle.target_fps = 60;
    // Saturating fill at 60 FPS on this device.
    triangle.gpu_workload_pixels = phone.gpu.fillrate_pps / 62.0;
    triangle.cpu_frame_seconds = 0.0025;
    triangle.cpu_background_cores = 0.2;

    sim::SessionConfig config = bench::paper_config(triangle, phone, duration);
    const sim::SessionResult r = sim::run_session(config);
    const double gpu_w = r.energy.gpu_j / duration;
    const double cpu_w = r.energy.cpu_j / duration;
    std::printf("%-22s %-12.2f %-12.2f %-8.1f\n", phone.name.c_str(), gpu_w,
                cpu_w, gpu_w / cpu_w);
  }
  bench::print_rule();
  std::printf("Paper: GPU ~3 W, ~5x the CPU's power on all three phones.\n");
  return 0;
}
