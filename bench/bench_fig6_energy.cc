// Fig. 6 reproduction: normalized energy consumption per game per phone.
//
//   (a) GBooster vs local execution — savings up to ~70% on the most
//       GPU-intensive action game (G2) and ~30% on puzzle games (G6);
//   (b) the same with the interface-switching optimization disabled
//       (always-WiFi): overall power rises, e.g. G1 ~40% -> ~65%.
#include <cstdio>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace gb;
  const double duration = bench::default_duration(420.0);

  const auto games = apps::all_games();
  for (const auto& phone : {device::nexus5(), device::lg_g5()}) {
    std::vector<sim::SessionConfig> configs;
    for (const auto& game : games) {
      configs.push_back(bench::paper_config(game, phone, duration));  // local
      sim::SessionConfig offload = bench::paper_config(game, phone, duration);
      offload.service_devices = {device::nvidia_shield()};
      configs.push_back(offload);  // (a) with switching
      offload.switcher.policy = core::SwitchPolicy::kAlwaysWifi;
      configs.push_back(offload);  // (b) optimization disabled
    }
    const auto results = bench::run_all(std::move(configs));

    bench::print_header("Fig. 6 (" + phone.name +
                        "): normalized energy (local = 100%)");
    std::printf("%-4s %-22s | %-12s | %-14s | %-16s\n", "Id", "Game",
                "local (W)", "(a) GBooster", "(b) always-WiFi");
    bench::print_rule();
    for (std::size_t g = 0; g < games.size(); ++g) {
      const auto& local = results[g * 3];
      const auto& switching = results[g * 3 + 1];
      const auto& always_wifi = results[g * 3 + 2];
      std::printf("%-4s %-22s | %-12.2f | %8.0f%%     | %10.0f%%\n",
                  games[g].id.c_str(), games[g].name.c_str(),
                  local.avg_power_w,
                  100.0 * switching.energy.total() / local.energy.total(),
                  100.0 * always_wifi.energy.total() / local.energy.total());
    }
    bench::print_rule();
  }
  std::printf(
      "Paper shape: every game saves energy offloaded; action games save the\n"
      "most (G2 ~70%% saved), puzzle the least (~30%%); disabling the\n"
      "Bluetooth/WiFi switching raises consumption significantly (Fig. 6b).\n");
  return 0;
}
